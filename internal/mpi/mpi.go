// Package mpi is the message-passing substrate the paper's parallel codes
// (the treecode and the NAS benchmarks) run on. Ranks are goroutines that
// exchange real data over per-pair FIFO channels, so parallel results are
// genuinely computed in parallel; each rank additionally carries a virtual
// clock, advanced by modelled compute time (via the CPU op-mix models) and
// by message costs from a netsim.Fabric, so a run yields both a correct
// answer and a simulated parallel runtime on the modelled cluster.
//
// Collectives are implemented on top of point-to-point sends (binomial
// trees, rings, dissemination barriers), so their virtual-time behaviour
// emerges from the same fabric model the analytical formulas in netsim
// describe — and the two are cross-checked in tests.
//
// The substrate is built for throughput on the host as well as fidelity
// on the modelled wire: payload buffers come from per-rank size-classed
// pools (pool.go), small payloads are eagerly copied while large ones
// take a rendezvous/ownership-transfer path, and the collectives have
// in-place variants that reduce into caller buffers (collectives.go).
// Sweeping a rank axis therefore measures the modelled fabric, not host
// allocation churn.
package mpi

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// message is one in-flight point-to-point transfer.
type message struct {
	tag     int
	f64     []float64
	i64     []int64
	bytes   []byte
	sent    float64 // virtual time the send was posted
	arrival float64 // virtual time the payload is fully received (uncontended)
}

func (m *message) payloadBytes() int {
	return 8*len(m.f64) + 8*len(m.i64) + len(m.bytes)
}

// Collective kinds, for the per-collective traffic counters.
const (
	ctxP2P = iota
	ctxBarrier
	ctxBcast
	ctxReduce
	ctxAllreduce
	ctxGather
	ctxScatter
	ctxAllgather
	ctxAlltoall
	numCtx
)

var ctxNames = [numCtx]string{
	"p2p", "barrier", "bcast", "reduce", "allreduce",
	"gather", "scatter", "allgather", "alltoall",
}

// DefaultRendezvousThreshold is the payload size (bytes) at or above
// which the substrate's internal sends prefer ownership transfer over an
// eager copy. 32 KiB keeps small control messages on the cheap eager
// path while large blocks (LET exports, ring segments) cross without a
// memcpy.
const DefaultRendezvousThreshold = 32 << 10

// DefaultWatchdogTimeout is how long the deadlock watchdog waits without
// any send or receive completing anywhere in the world before it aborts
// the run with a per-rank diagnostic. Generous enough that modelled
// compute phases never trip it; a genuinely mismatched send/recv fails
// in about this much host time instead of hanging CI.
const DefaultWatchdogTimeout = 60 * time.Second

// Config selects the substrate's optional behaviours. The zero value is
// the production default: pooling on, classic collectives, the default
// rendezvous threshold, and the watchdog armed.
type Config struct {
	// Fabric models the interconnect; nil = zero-cost network.
	Fabric *netsim.Fabric
	// DisablePool bypasses the buffer pools (every payload is a fresh
	// allocation) — the baseline the equivalence tests and the allocs/op
	// benchmarks compare the pooled path against. Results and virtual
	// times are bit-identical either way.
	DisablePool bool
	// Native switches Allreduce/Bcast (and their Into variants) to the
	// dedicated algorithms — recursive doubling, pipelined ring with
	// segmentation — instead of the classic reduce+bcast / binomial
	// patterns. Off by default so historical virtual times stay
	// bit-for-bit reproducible.
	Native bool
	// RendezvousThreshold overrides DefaultRendezvousThreshold (bytes);
	// 0 keeps the default.
	RendezvousThreshold int
	// SegmentBytes is the native pipelined-broadcast segment size;
	// 0 keeps the default (8 KiB).
	SegmentBytes int
	// WatchdogTimeout overrides DefaultWatchdogTimeout; 0 keeps the
	// default, negative disables the watchdog.
	WatchdogTimeout time.Duration
	// ChannelDepth overrides the per-pair in-flight message bound (0
	// keeps the package default). Purely host-side backpressure —
	// virtual times never depend on it — but each world preallocates
	// size²·depth message slots, so harnesses holding many worlds alive
	// at once (the concurrent rank sweep) set it lower. Ignored in
	// event mode, whose inboxes grow on demand.
	ChannelDepth int
	// Event switches the world to the event-driven scheduler: ranks run
	// as resumable state machines (Proc) dispatched from a pending-op
	// heap over the virtual clock, instead of one goroutine per rank.
	// No per-pair channels are allocated (messages land in lazily
	// created per-rank inboxes), so worlds of 10k+ ranks cost a few
	// hundred bytes per rank instead of size² channels. Virtual times,
	// results and observability counters are bit-identical to the
	// goroutine path. Run an event world with RunEvent; blocking
	// Recv/collective calls panic on it.
	Event bool
}

// DefaultSegmentBytes is the native pipelined-broadcast segment size.
const DefaultSegmentBytes = 8 << 10

// World is a communicator universe of Size ranks.
type World struct {
	size   int
	fabric *netsim.Fabric // nil = zero-cost network
	cfg    Config
	chans  []chan message // chans[src*size+dst]; nil in event mode
	comms  []*Comm

	// Event-mode state: per-rank inboxes (src → FIFO queue, created on
	// first use) and the ready-rank heap, live during RunEvent.
	queues []map[int]*msgQueue
	sched  *evScheduler

	// Watchdog plumbing, armed per Run.
	progress  atomic.Uint64
	stallCh   chan struct{}
	stallDiag string

	// Tracer, when non-nil, records every point-to-point send as a span
	// in the simulated-cluster time domain (obs.PidSim, virtual seconds
	// rendered as microsecond ticks; tid = sending rank). Collectives
	// are built on sends, so their structure emerges in the trace. Set
	// before Run.
	Tracer *obs.Tracer
}

// ChannelDepth bounds in-flight messages per (src,dst) pair; deep enough
// that the eager sends our codes use never deadlock.
const ChannelDepth = 4096

// NewWorld creates a world with the default configuration (pooled
// buffers, classic collectives, watchdog armed). fabric may be nil for
// an untimed run.
func NewWorld(size int, fabric *netsim.Fabric) (*World, error) {
	return NewWorldWithConfig(size, Config{Fabric: fabric})
}

// NewWorldWithConfig creates a world with explicit substrate options.
func NewWorldWithConfig(size int, cfg Config) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size %d", size)
	}
	if cfg.Fabric != nil {
		if err := cfg.Fabric.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.RendezvousThreshold == 0 {
		cfg.RendezvousThreshold = DefaultRendezvousThreshold
	}
	if cfg.SegmentBytes == 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.WatchdogTimeout == 0 {
		cfg.WatchdogTimeout = DefaultWatchdogTimeout
	}
	if f := cfg.Fabric; f != nil {
		if cap := f.Capacity(); cap > 0 && size > cap {
			return nil, fmt.Errorf("mpi: world size %d exceeds fabric %q capacity %d", size, f.Name, cap)
		}
	}
	depth := cfg.ChannelDepth
	if depth <= 0 {
		depth = ChannelDepth
	}
	w := &World{size: size, fabric: cfg.Fabric, cfg: cfg}
	if cfg.Event {
		// Event mode: no size² channels — inbox queues materialize on
		// first message per (src,dst) pair.
		w.queues = make([]map[int]*msgQueue, size)
	} else {
		w.chans = make([]chan message, size*size)
		for i := range w.chans {
			w.chans[i] = make(chan message, depth)
		}
	}
	w.comms = make([]*Comm, size)
	for r := 0; r < size; r++ {
		w.comms[r] = &Comm{world: w, rank: r}
		w.comms[r].pool.disabled = cfg.DisablePool
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes fn on every rank concurrently and waits for completion. It
// returns the first error any rank reported (panics are converted to
// errors so a failing rank cannot take down the test harness silently).
//
// A deadlock watchdog (Config.WatchdogTimeout) monitors message-level
// progress: if no send or receive completes anywhere in the world for
// the timeout, every blocked rank aborts with a diagnostic naming each
// rank's pending operation (rank, peer, tag), which Run returns as an
// error — a mismatched send/recv fails loudly instead of hanging.
func (w *World) Run(fn func(c *Comm) error) error {
	if w.cfg.Event {
		return fmt.Errorf("mpi: Run on an event-driven world; use RunEvent")
	}
	var stopWatch chan struct{}
	if w.cfg.WatchdogTimeout > 0 {
		w.stallCh = make(chan struct{})
		stopWatch = make(chan struct{})
		go w.watch(w.cfg.WatchdogTimeout, w.stallCh, stopWatch)
	} else {
		w.stallCh = nil
	}
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = fn(w.comms[rank])
		}(r)
	}
	wg.Wait()
	if stopWatch != nil {
		close(stopWatch)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// watch is the deadlock watchdog: it samples the world-wide progress
// counter and, when it sees no completed send/recv for a full timeout
// window, records a per-rank diagnostic and closes stall, which makes
// every blocked rank panic (recovered into an error by Run).
func (w *World) watch(timeout time.Duration, stall, stop chan struct{}) {
	tick := timeout / 8
	if tick < 2*time.Millisecond {
		tick = 2 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	last := w.progress.Load()
	lastChange := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			cur := w.progress.Load()
			if cur != last {
				last = cur
				lastChange = time.Now()
				continue
			}
			if time.Since(lastChange) >= timeout {
				w.stallDiag = w.describeRanks()
				close(stall)
				return
			}
		}
	}
}

// describeRanks renders every rank's pending blocking operation for the
// watchdog diagnostic.
func (w *World) describeRanks() string {
	var b strings.Builder
	for r, c := range w.comms {
		if r > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "rank %d: %s", r, c.pendingOp())
	}
	return b.String()
}

// MaxTime returns the parallel makespan: the maximum virtual clock over
// all ranks (call after Run).
func (w *World) MaxTime() float64 {
	m := 0.0
	for _, c := range w.comms {
		if c.now > m {
			m = c.now
		}
	}
	return m
}

// TotalBytes returns the bytes sent across all ranks (call after Run).
func (w *World) TotalBytes() int64 {
	var n int64
	for _, c := range w.comms {
		n += c.bytesSent
	}
	return n
}

// TotalMessages returns messages sent across all ranks (call after Run).
func (w *World) TotalMessages() int64 {
	var n int64
	for _, c := range w.comms {
		n += c.msgsSent
	}
	return n
}

// PoolStats returns the summed buffer-pool hit/miss counts across ranks
// (call after Run). Both are deterministic for a deterministic program.
func (w *World) PoolStats() (hits, misses int64) {
	for _, c := range w.comms {
		hits += c.pool.hits
		misses += c.pool.misses
	}
	return hits, misses
}

// Comm is one rank's endpoint.
type Comm struct {
	world     *World
	rank      int
	now       float64 // virtual time, seconds
	bytesSent int64
	msgsSent  int64

	pool bufPool
	// ctx tags sends with the outermost collective for the per-collective
	// traffic counters; ctxP2P between collectives.
	ctx        int
	bytesByCtx [numCtx]int64
	eagerMsgs  int64
	rdvMsgs    int64

	// portBusy is this rank's ingress-port occupancy horizon under the
	// contention model (netsim.Fabric.PortContention); delay accumulates
	// the virtual seconds messages waited for the port.
	portBusy float64
	delay    float64

	// Pending-operation fields the watchdog reads concurrently.
	waitOp   atomic.Int32 // 0 none, 1 recv, 2 send
	waitPeer atomic.Int32
	waitTag  atomic.Int32

	scratch [1]float64 // AllreduceScalar's zero-alloc staging
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Now returns the rank's virtual clock.
func (c *Comm) Now() float64 { return c.now }

// AddCompute advances the virtual clock by modelled computation time.
func (c *Comm) AddCompute(seconds float64) {
	if seconds < 0 {
		panic("mpi: negative compute time")
	}
	c.now += seconds
}

func (c *Comm) chanTo(dst int) chan message {
	return c.world.chans[c.rank*c.world.size+dst]
}

func (c *Comm) chanFrom(src int) chan message {
	return c.world.chans[src*c.world.size+c.rank]
}

// pendingOp renders the rank's current blocking operation (watchdog
// diagnostic).
func (c *Comm) pendingOp() string {
	switch c.waitOp.Load() {
	case 1:
		return fmt.Sprintf("blocked in recv(src=%d, tag=%d)", c.waitPeer.Load(), c.waitTag.Load())
	case 2:
		return fmt.Sprintf("blocked in send(dst=%d, tag=%d)", c.waitPeer.Load(), c.waitTag.Load())
	}
	return "not blocked (computing or done)"
}

// enterCollective tags subsequent sends with the collective kind; nested
// collectives (allreduce's internal reduce+bcast) keep the outermost
// tag. exitCollective restores the previous context.
func (c *Comm) enterCollective(kind int) int {
	prev := c.ctx
	if prev == ctxP2P {
		c.ctx = kind
	}
	return prev
}

func (c *Comm) exitCollective(prev int) { c.ctx = prev }

// wantOwned reports whether an internal send of the given payload size
// should take the rendezvous (ownership-transfer) path.
func (c *Comm) wantOwned(bytes int) bool {
	return bytes >= c.world.cfg.RendezvousThreshold
}

// send transmits m to dst, advancing the virtual clocks per the fabric
// model. copied says whether the payload was eagerly copied (false =
// ownership transfer), for the eager/rendezvous counters.
func (c *Comm) send(dst int, m message, copied bool) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: rank %d sends to invalid rank %d", c.rank, dst))
	}
	if dst == c.rank {
		panic("mpi: self-send not supported; use local data")
	}
	start := c.now
	m.sent = start
	if f := c.world.fabric; f != nil {
		// The hop count is rank-pair dependent on the shaped fabrics; on
		// a star this computes exactly the legacy PointToPoint.
		m.arrival = c.now + f.PointToPointRanks(c.rank, dst, m.payloadBytes())
		// The sender's CPU is busy for the software half of the overhead.
		c.now += f.SoftwareOverhead / 2
	} else {
		m.arrival = c.now
	}
	if t := c.world.Tracer; t != nil {
		t.Complete(obs.PidSim, c.rank, "mpi", "send",
			start*1e6, (m.arrival-start)*1e6,
			map[string]any{"dst": dst, "tag": m.tag, "bytes": m.payloadBytes()})
	}
	pb := m.payloadBytes()
	c.bytesSent += int64(pb)
	c.bytesByCtx[c.ctx] += int64(pb)
	c.msgsSent++
	if pb > 0 {
		if copied {
			c.eagerMsgs++
		} else {
			c.rdvMsgs++
		}
	}
	if c.world.cfg.Event {
		// Event mode: sends never block — append to the receiver's inbox
		// and wake it if it is waiting on exactly this sender.
		c.world.deliver(c.rank, dst, m)
		c.world.progress.Add(1)
		return
	}
	ch := c.chanTo(dst)
	select {
	case ch <- m:
	default:
		c.waitPeer.Store(int32(dst))
		c.waitTag.Store(int32(m.tag))
		c.waitOp.Store(2)
		select {
		case ch <- m:
			c.waitOp.Store(0)
		case <-c.world.stallCh:
			panic(fmt.Sprintf("mpi: watchdog: no progress for %v; rank %d blocked in send(dst=%d, tag=%d); world state: %s",
				c.world.cfg.WatchdogTimeout, c.rank, dst, m.tag, c.world.stallDiag))
		}
	}
	c.world.progress.Add(1)
}

// sendF64 is the typed internal send: owned transfers the buffer
// (rendezvous), otherwise the payload is copied into a pooled buffer
// (eager) and data stays with the caller.
func (c *Comm) sendF64(dst, tag int, data []float64, owned bool) {
	if !owned {
		data = c.pool.copyF64(data)
	}
	c.send(dst, message{tag: tag, f64: data}, !owned)
}

func (c *Comm) sendI64(dst, tag int, data []int64, owned bool) {
	if !owned {
		data = c.pool.copyI64(data)
	}
	c.send(dst, message{tag: tag, i64: data}, !owned)
}

func (c *Comm) sendRaw(dst, tag int, data []byte, owned bool) {
	if !owned {
		data = c.pool.copyBytes(data)
	}
	c.send(dst, message{tag: tag, bytes: data}, !owned)
}

// recv receives the next message from src, which must carry the given
// tag (our codes use deterministic matching), applying the contention
// model and advancing the virtual clock.
func (c *Comm) recv(src, tag int) message {
	if src < 0 || src >= c.world.size {
		panic(fmt.Sprintf("mpi: rank %d receives from invalid rank %d", c.rank, src))
	}
	if c.world.cfg.Event {
		panic(fmt.Sprintf("mpi: rank %d blocking recv on an event-driven world; use TryRecv from a Proc", c.rank))
	}
	ch := c.chanFrom(src)
	var m message
	select {
	case m = <-ch:
	default:
		c.waitPeer.Store(int32(src))
		c.waitTag.Store(int32(tag))
		c.waitOp.Store(1)
		select {
		case m = <-ch:
			c.waitOp.Store(0)
		case <-c.world.stallCh:
			panic(fmt.Sprintf("mpi: watchdog: no progress for %v; rank %d blocked in recv(src=%d, tag=%d); world state: %s",
				c.world.cfg.WatchdogTimeout, c.rank, src, tag, c.world.stallDiag))
		}
	}
	return c.finishRecv(m, src, tag)
}

// finishRecv is the shared post-pop accounting for the goroutine and
// event receive paths: progress, tag check, egress-port contention, and
// the arrival clamp — identical arithmetic in both modes.
func (c *Comm) finishRecv(m message, src, tag int) message {
	c.world.progress.Add(1)
	if m.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", c.rank, tag, src, m.tag))
	}
	if f := c.world.fabric; f != nil && f.PortContention {
		if pb := m.payloadBytes(); pb > 0 {
			// Store-and-forward egress port: the final-hop serialization
			// of concurrent senders to this rank happens one message at a
			// time, in the order the rank consumes them.
			ser := f.SerializeTime(pb)
			startTx := m.arrival - ser
			if c.portBusy > startTx {
				startTx = c.portBusy
			}
			arr := startTx + ser
			c.delay += arr - m.arrival
			c.portBusy = arr
			m.arrival = arr
		}
	}
	if m.arrival > c.now {
		c.now = m.arrival
	}
	return m
}

// tryRecv is the event-mode receive: it pops the next message from src
// if one is queued (the accounting is finishRecv, same as recv), or
// records the pending operation and reports false so the scheduler
// parks the rank until that sender delivers.
func (c *Comm) tryRecv(src, tag int) (message, bool) {
	if src < 0 || src >= c.world.size {
		panic(fmt.Sprintf("mpi: rank %d receives from invalid rank %d", c.rank, src))
	}
	if !c.world.cfg.Event {
		// Goroutine worlds have no inboxes; state machines degrade to
		// the blocking path so the same Proc code runs in both modes.
		return c.recv(src, tag), true
	}
	var m message
	ok := false
	if qm := c.world.queues[c.rank]; qm != nil {
		if q := qm[src]; q != nil {
			m, ok = q.pop()
		}
	}
	if !ok {
		c.waitPeer.Store(int32(src))
		c.waitTag.Store(int32(tag))
		c.waitOp.Store(1)
		return message{}, false
	}
	c.waitOp.Store(0)
	return c.finishRecv(m, src, tag), true
}

// Send transmits float64 data to dst with a tag. The slice is copied
// (into a pooled buffer), so the caller may reuse it immediately.
func (c *Comm) Send(dst, tag int, data []float64) {
	c.sendF64(dst, tag, data, false)
}

// SendOwned transmits float64 data without copying: ownership of the
// slice transfers to the receiver (the rendezvous path). The caller must
// not touch data afterwards. Pair with AcquireF64 on the sending side
// and ReleaseF64 on the receiving side for an allocation-free exchange.
func (c *Comm) SendOwned(dst, tag int, data []float64) {
	c.sendF64(dst, tag, data, true)
}

// Recv receives float64 data from src; the tag must match the next
// message in FIFO order. The returned slice belongs to the caller, who
// may keep it or recycle it with ReleaseF64.
func (c *Comm) Recv(src, tag int) []float64 {
	return c.recv(src, tag).f64
}

// SendInts transmits int64 data (copied; the caller may reuse it).
func (c *Comm) SendInts(dst, tag int, data []int64) {
	c.sendI64(dst, tag, data, false)
}

// SendIntsOwned transmits int64 data by ownership transfer (no copy).
func (c *Comm) SendIntsOwned(dst, tag int, data []int64) {
	c.sendI64(dst, tag, data, true)
}

// RecvInts receives int64 data; the slice belongs to the caller
// (recyclable with ReleaseI64).
func (c *Comm) RecvInts(src, tag int) []int64 {
	return c.recv(src, tag).i64
}

// SendBytes transmits raw bytes (for encoded structures; copied).
func (c *Comm) SendBytes(dst, tag int, data []byte) {
	c.sendRaw(dst, tag, data, false)
}

// RecvBytes receives raw bytes; the slice belongs to the caller
// (recyclable with ReleaseBytes).
func (c *Comm) RecvBytes(src, tag int) []byte {
	return c.recv(src, tag).bytes
}

// Sendrecv exchanges float64 payloads with a partner without deadlock.
func (c *Comm) Sendrecv(partner, tag int, data []float64) []float64 {
	c.Send(partner, tag, data)
	return c.Recv(partner, tag)
}

// worldMetrics is the World telemetry vocabulary. The byte/message
// counters are per-world totals, so gathering the worlds of a CPU-count
// sweep accumulates traffic across the sweep; the makespan gauge keeps
// the maximum gathered value. Pool, eager/rendezvous and per-collective
// byte counters are deterministic (per-rank pools, summed in rank
// order); the contention-delay timer is virtual time, also
// deterministic.
var worldMetrics = func() []obs.Metric {
	ms := []obs.Metric{
		{Name: "mpi.bytes.total", Kind: obs.KindCounter, Unit: "bytes", Help: "payload bytes sent across all ranks"},
		{Name: "mpi.messages.total", Kind: obs.KindCounter, Help: "messages sent across all ranks"},
		{Name: "mpi.time.max", Kind: obs.KindGauge, Unit: "s", Help: "parallel makespan: max rank virtual clock"},
		{Name: "mpi.ranks", Kind: obs.KindGauge, Help: "world size of the last gathered world"},
		{Name: "mpi.pool.hits", Kind: obs.KindCounter, Help: "payload buffers served from the per-rank pools"},
		{Name: "mpi.pool.misses", Kind: obs.KindCounter, Help: "payload buffers freshly allocated"},
		{Name: "mpi.msgs.eager", Kind: obs.KindCounter, Help: "payload messages sent by eager copy"},
		{Name: "mpi.msgs.rendezvous", Kind: obs.KindCounter, Help: "payload messages sent by ownership transfer"},
		{Name: "mpi.contention.delay", Kind: obs.KindTimer, Unit: "s", Help: "virtual seconds messages waited for contended ports"},
	}
	for k := 0; k < numCtx; k++ {
		ms = append(ms, obs.Metric{
			Name: "mpi.bytes." + ctxNames[k], Kind: obs.KindCounter, Unit: "bytes",
			Help: "payload bytes sent inside " + ctxNames[k] + " operations",
		})
	}
	return ms
}()

// Describe implements obs.Source.
func (w *World) Describe() []obs.Metric { return worldMetrics }

// Collect implements obs.Source: the deprecated-but-kept accessors
// MaxTime/TotalBytes/TotalMessages remain thin views over the same
// numbers. Call after Run.
func (w *World) Collect(s *obs.Snapshot) {
	s.AddCounter("mpi.bytes.total", "bytes", "payload bytes sent across all ranks", uint64(w.TotalBytes()))
	s.AddCounter("mpi.messages.total", "", "messages sent across all ranks", uint64(w.TotalMessages()))
	s.MaxGauge("mpi.time.max", "s", "parallel makespan: max rank virtual clock", w.MaxTime())
	s.SetGauge("mpi.ranks", "", "world size of the last gathered world", float64(w.size))
	var hits, misses, eager, rdv int64
	var delay float64
	var byCtx [numCtx]int64
	for _, c := range w.comms {
		hits += c.pool.hits
		misses += c.pool.misses
		eager += c.eagerMsgs
		rdv += c.rdvMsgs
		delay += c.delay
		for k := 0; k < numCtx; k++ {
			byCtx[k] += c.bytesByCtx[k]
		}
	}
	s.AddCounter("mpi.pool.hits", "", "payload buffers served from the per-rank pools", uint64(hits))
	s.AddCounter("mpi.pool.misses", "", "payload buffers freshly allocated", uint64(misses))
	s.AddCounter("mpi.msgs.eager", "", "payload messages sent by eager copy", uint64(eager))
	s.AddCounter("mpi.msgs.rendezvous", "", "payload messages sent by ownership transfer", uint64(rdv))
	s.AddTimer("mpi.contention.delay", "virtual seconds messages waited for contended ports", delay)
	for k := 0; k < numCtx; k++ {
		s.AddCounter("mpi.bytes."+ctxNames[k], "bytes",
			"payload bytes sent inside "+ctxNames[k]+" operations", uint64(byCtx[k]))
	}
}
