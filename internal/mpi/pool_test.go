package mpi

import "testing"

func TestClassForStoreClassForInvariants(t *testing.T) {
	if classFor(0) != 0 || classFor(1) != 0 {
		t.Fatal("degenerate acquire classes wrong")
	}
	if classFor(2) != 1 || classFor(3) != 2 || classFor(4) != 2 || classFor(5) != 3 {
		t.Fatal("small acquire classes wrong")
	}
	if storeClassFor(0) != -1 || storeClassFor(1) != 0 || storeClassFor(3) != 1 || storeClassFor(4) != 2 {
		t.Fatal("small store classes wrong")
	}
	if storeClassFor(1<<poolClasses) != -1 {
		t.Fatal("oversized capacity must not be pooled")
	}
	// The load-bearing invariant: any buffer stored under class k has
	// cap >= 2^k, and any request routed to class k needs <= 2^k
	// elements, so a pooled buffer always satisfies the request.
	for n := 1; n <= 1<<12; n++ {
		k := classFor(n)
		if 1<<k < n {
			t.Fatalf("classFor(%d) = %d but 2^%d < %d", n, k, k, n)
		}
		if s := storeClassFor(1 << k); s != k {
			t.Fatalf("storeClassFor(2^%d) = %d", k, s)
		}
	}
	for c := 1; c <= 1<<12; c++ {
		k := storeClassFor(c)
		if k >= 0 && 1<<k > c {
			t.Fatalf("storeClassFor(%d) = %d but 2^%d > %d", c, k, k, c)
		}
	}
}

func TestPoolRoundTripReusesBuffers(t *testing.T) {
	var p bufPool
	a := p.acquireF64(100)
	if len(a) != 100 || cap(a) != 128 {
		t.Fatalf("acquire(100): len=%d cap=%d", len(a), cap(a))
	}
	p.releaseF64(a)
	b := p.acquireF64(90) // same class: must reuse a's array
	if &a[:1][0] != &b[0] {
		t.Fatal("round trip did not reuse the released buffer")
	}
	if p.hits != 1 || p.misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", p.hits, p.misses)
	}
	c := p.acquireF64(300) // different class: fresh allocation
	if cap(c) != 512 || p.misses != 2 {
		t.Fatalf("cross-class acquire: cap=%d misses=%d", cap(c), p.misses)
	}
}

func TestPoolTypedFreelistsAreIndependent(t *testing.T) {
	var p bufPool
	f := p.acquireF64(10)
	p.releaseF64(f)
	i := p.acquireI64(10) // must not collide with the f64 freelist
	if p.hits != 0 {
		t.Fatal("i64 acquire hit the f64 freelist")
	}
	p.releaseI64(i)
	raw := p.acquireBytes(10)
	p.releaseBytes(raw)
	if got := p.acquireBytes(9); &got[0] != &raw[:1][0] {
		t.Fatal("byte freelist did not round-trip")
	}
}

func TestPoolDisabledNeverReuses(t *testing.T) {
	p := bufPool{disabled: true}
	a := p.acquireF64(64)
	p.releaseF64(a)
	b := p.acquireF64(64)
	if &a[0] == &b[0] {
		t.Fatal("disabled pool reused a buffer")
	}
	if p.hits != 0 {
		t.Fatal("disabled pool recorded hits")
	}
}

func TestPoolDepthBounded(t *testing.T) {
	var p bufPool
	bufs := make([][]float64, 0, poolDepth+10)
	for i := 0; i < poolDepth+10; i++ {
		bufs = append(bufs, make([]float64, 8, 8))
	}
	for _, b := range bufs {
		p.releaseF64(b)
	}
	if got := len(p.f64[3]); got != poolDepth {
		t.Fatalf("freelist holds %d buffers, cap is %d", got, poolDepth)
	}
}

func TestCopyF64UsesPool(t *testing.T) {
	var p bufPool
	seed := p.acquireF64(4) // class 2, the class a 3-element copy draws from
	p.releaseF64(seed)
	got := p.copyF64([]float64{1, 2, 3})
	if p.hits != 1 {
		t.Fatal("copyF64 did not draw from the pool")
	}
	if got[0] != 1 || got[2] != 3 {
		t.Fatalf("copyF64 content: %v", got)
	}
}
