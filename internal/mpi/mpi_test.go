package mpi

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/netsim"
)

func worldSizes() []int { return []int{1, 2, 3, 4, 5, 8, 13, 16} }

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0, nil); err == nil {
		t.Fatal("size 0 accepted")
	}
	bad := netsim.FastEthernet()
	bad.BandwidthBps = -1
	if _, err := NewWorld(2, bad); err == nil {
		t.Fatal("bad fabric accepted")
	}
}

func TestSendRecvBasic(t *testing.T) {
	w, err := NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := c.Recv(0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				return fmt.Errorf("got %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesData(t *testing.T) {
	w, _ := NewWorld(2, nil)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf) // Send copies synchronously…
			buf[0] = 99       // …so this mutation cannot reach the wire.
		} else {
			if got := c.Recv(0, 0); got[0] != 42 {
				return fmt.Errorf("message mutated: %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMismatchPanicsToError(t *testing.T) {
	w, _ := NewWorld(2, nil)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
		} else {
			c.Recv(0, 2)
		}
		return nil
	})
	if err == nil {
		t.Fatal("tag mismatch did not error")
	}
}

func TestIntAndByteP2P(t *testing.T) {
	w, _ := NewWorld(2, nil)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendInts(1, 0, []int64{-1, 5})
			c.SendBytes(1, 1, []byte("hello"))
		} else {
			if got := c.RecvInts(0, 0); got[1] != 5 {
				return fmt.Errorf("ints: %v", got)
			}
			if got := c.RecvBytes(0, 1); string(got) != "hello" {
				return fmt.Errorf("bytes: %q", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierAllSizes(t *testing.T) {
	for _, p := range worldSizes() {
		w, _ := NewWorld(p, nil)
		counter := make([]int, p)
		err := w.Run(func(c *Comm) error {
			counter[c.Rank()] = 1
			c.Barrier()
			for r, v := range counter {
				if v != 1 {
					return fmt.Errorf("rank %d not arrived before barrier exit (saw from %d)", r, c.Rank())
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, p := range worldSizes() {
		for root := 0; root < p; root++ {
			w, _ := NewWorld(p, nil)
			err := w.Run(func(c *Comm) error {
				var buf []float64
				if c.Rank() == root {
					buf = []float64{3.5, float64(root)}
				}
				got := c.Bcast(root, buf)
				if len(got) != 2 || got[0] != 3.5 || got[1] != float64(root) {
					return fmt.Errorf("rank %d got %v", c.Rank(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range worldSizes() {
		w, _ := NewWorld(p, nil)
		err := w.Run(func(c *Comm) error {
			data := []float64{float64(c.Rank()), 1}
			got := c.Reduce(0, Sum, data)
			if c.Rank() == 0 {
				wantA := float64(p*(p-1)) / 2
				if got[0] != wantA || got[1] != float64(p) {
					return fmt.Errorf("reduce got %v", got)
				}
			} else if got != nil {
				return fmt.Errorf("non-root got %v", got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllreduceMatchesGatherReduceBcastProperty(t *testing.T) {
	// Semantics property: allreduce(op) == what every rank would get from
	// gather → fold → bcast.
	for _, p := range worldSizes() {
		for _, op := range []struct {
			name string
			op   Op
		}{{"sum", Sum}, {"max", Max}, {"min", Min}} {
			w, _ := NewWorld(p, nil)
			err := w.Run(func(c *Comm) error {
				v := []float64{float64((c.Rank()*7)%5) - 2, float64(c.Rank())}
				all := c.Allreduce(op.op, v)
				// Independent computation of the expected fold.
				want0, want1 := float64((0*7)%5)-2, 0.0
				for r := 1; r < p; r++ {
					want0 = op.op(want0, float64((r*7)%5)-2)
					want1 = op.op(want1, float64(r))
				}
				if all[0] != want0 || all[1] != want1 {
					return fmt.Errorf("rank %d %s: got %v want [%v %v]", c.Rank(), op.name, all, want0, want1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d: %v", p, err)
			}
		}
	}
}

func TestGatherScatter(t *testing.T) {
	for _, p := range worldSizes() {
		w, _ := NewWorld(p, nil)
		err := w.Run(func(c *Comm) error {
			parts := c.Gather(0, []float64{float64(c.Rank() * 10)})
			if c.Rank() == 0 {
				for r := 0; r < p; r++ {
					if parts[r][0] != float64(r*10) {
						return fmt.Errorf("gather parts %v", parts)
					}
				}
				pieces := make([][]float64, p)
				for r := range pieces {
					pieces[r] = []float64{float64(r * 100)}
				}
				mine := c.Scatter(0, pieces)
				if mine[0] != 0 {
					return fmt.Errorf("root scatter piece %v", mine)
				}
			} else {
				mine := c.Scatter(0, nil)
				if mine[0] != float64(c.Rank()*100) {
					return fmt.Errorf("rank %d scatter piece %v", c.Rank(), mine)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range worldSizes() {
		w, _ := NewWorld(p, nil)
		err := w.Run(func(c *Comm) error {
			all := c.Allgather([]float64{float64(c.Rank()), float64(c.Rank() * 2)})
			for r := 0; r < p; r++ {
				if all[r][0] != float64(r) || all[r][1] != float64(r*2) {
					return fmt.Errorf("rank %d: allgather[%d] = %v", c.Rank(), r, all[r])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllgatherInts(t *testing.T) {
	w, _ := NewWorld(5, nil)
	err := w.Run(func(c *Comm) error {
		all := c.AllgatherInts([]int64{int64(c.Rank() * 3)})
		for r := 0; r < 5; r++ {
			if all[r][0] != int64(r*3) {
				return fmt.Errorf("allgather ints %v", all)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallInts(t *testing.T) {
	for _, p := range worldSizes() {
		w, _ := NewWorld(p, nil)
		err := w.Run(func(c *Comm) error {
			send := make([][]int64, p)
			for d := range send {
				send[d] = []int64{int64(c.Rank()*100 + d)}
			}
			got := c.AlltoallInts(send)
			for s := 0; s < p; s++ {
				want := int64(s*100 + c.Rank())
				if got[s][0] != want {
					return fmt.Errorf("rank %d: from %d got %v want %d", c.Rank(), s, got[s], want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestVirtualTimeP2P(t *testing.T) {
	fab := netsim.FastEthernet()
	w, _ := NewWorld(2, fab)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 1000))
		} else {
			c.Recv(0, 0)
			want := fab.PointToPoint(8000)
			if math.Abs(c.Now()-want) > 1e-9 {
				return fmt.Errorf("receiver clock %g, want %g", c.Now(), want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxTime() <= 0 {
		t.Fatal("MaxTime not advanced")
	}
	if w.TotalBytes() != 8000 {
		t.Fatalf("TotalBytes = %d, want 8000", w.TotalBytes())
	}
	if w.TotalMessages() != 1 {
		t.Fatalf("TotalMessages = %d", w.TotalMessages())
	}
}

func TestVirtualTimeComputeOverlapsAcrossRanks(t *testing.T) {
	// Two ranks computing 1s each in parallel: makespan ~1s, not 2s.
	w, _ := NewWorld(2, netsim.FastEthernet())
	err := w.Run(func(c *Comm) error {
		c.AddCompute(1.0)
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if mt := w.MaxTime(); mt < 1.0 || mt > 1.01 {
		t.Fatalf("makespan %g, want ≈1s", mt)
	}
}

func TestVirtualTimeBcastMatchesAnalyticalModel(t *testing.T) {
	// The emergent virtual time of the p2p-built broadcast must be within
	// a small factor of netsim's closed-form estimate.
	fab := netsim.FastEthernet()
	for _, p := range []int{2, 4, 8, 16} {
		w, _ := NewWorld(p, fab)
		const n = 1 << 12
		err := w.Run(func(c *Comm) error {
			var buf []float64
			if c.Rank() == 0 {
				buf = make([]float64, n)
			}
			c.Bcast(0, buf)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		got := w.MaxTime()
		want := fab.Bcast(p, n*8)
		if got > want*1.5 || got < want*0.3 {
			t.Fatalf("p=%d: emergent bcast time %g vs analytical %g", p, got, want)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	w, _ := NewWorld(4, netsim.FastEthernet())
	times := make([]float64, 4)
	err := w.Run(func(c *Comm) error {
		c.AddCompute(float64(c.Rank()) * 0.1) // skewed loads
		c.Barrier()
		times[c.Rank()] = c.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// All clocks must be at least the slowest rank's pre-barrier time.
	for r, ti := range times {
		if ti < 0.3 {
			t.Fatalf("rank %d clock %g below straggler time 0.3", r, ti)
		}
	}
}

func TestAddComputeNegativePanics(t *testing.T) {
	w, _ := NewWorld(1, nil)
	err := w.Run(func(c *Comm) error {
		c.AddCompute(-1)
		return nil
	})
	if err == nil {
		t.Fatal("negative compute accepted")
	}
}

func TestSelfSendPanicsToError(t *testing.T) {
	w, _ := NewWorld(2, nil)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(0, 0, []float64{1})
		}
		return nil
	})
	if err == nil {
		t.Fatal("self-send accepted")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	w, _ := NewWorld(3, nil)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("rank 1 failed")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
}

func TestScalarAllreduce(t *testing.T) {
	w, _ := NewWorld(6, nil)
	err := w.Run(func(c *Comm) error {
		if got := c.AllreduceScalar(Max, float64(c.Rank())); got != 5 {
			return fmt.Errorf("max = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
