package mpi

import "math/bits"

// Buffer pooling for the message-passing hot path. Every payload that
// crosses the wire — the eager copy a Send makes, the accumulator a
// reduction folds into, the staging block a ring collective relays — is
// drawn from a size-classed freelist instead of make(), and returned to
// one when its owner is done. Communication-bound codes whose message
// flow is balanced (allreduce loops, pairwise exchanges, all-to-alls)
// reach an allocation-free steady state after the first iteration; see
// TestAllreduceSteadyStateAllocFree.
//
// Pools are per-Comm, not per-World: each rank's goroutine acquires from
// and releases to its own freelists, so no lock is needed and the
// hit/miss counters are a pure function of the rank's own send/receive
// sequence — deterministic across host scheduling, like every other obs
// counter (the determinism contract in internal/obs). A buffer acquired
// by the sender travels inside the message and is released by whoever
// ends up owning it: internal collective code releases it as soon as the
// payload is folded or copied out, while a payload handed to the caller
// (Recv, Bcast's return) belongs to the caller, who may keep it forever
// or hand it back with ReleaseF64/ReleaseI64/ReleaseBytes.

const (
	// poolClasses bounds the size classes: class k holds buffers with
	// capacity in [2^k, 2^(k+1)). 2^26 elements (512 MiB of float64) is
	// far beyond any payload the codes exchange; larger buffers are not
	// pooled.
	poolClasses = 27
	// poolDepth bounds each class's freelist so a pathological pattern
	// cannot hoard memory; overflowing releases fall to the GC.
	poolDepth = 64
)

// bufPool is one rank's set of freelists. The zero value is ready to
// use. disabled turns every acquire into a plain make (the unpooled
// baseline the equivalence tests and benchmarks compare against).
type bufPool struct {
	f64      [poolClasses][][]float64
	i64      [poolClasses][][]int64
	raw      [poolClasses][][]byte
	disabled bool
	hits     int64
	misses   int64
}

// classFor returns the acquire class for a request of n elements: the
// smallest k with 2^k >= n. Buffers stored in class k have cap >= 2^k,
// so any buffer popped from it satisfies the request.
func classFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// storeClassFor returns the release class for a buffer of capacity c:
// the largest k with 2^k <= c (so acquires from class k always get
// cap >= 2^k). Returns -1 for capacities that are not pooled.
func storeClassFor(c int) int {
	if c < 1 {
		return -1
	}
	k := bits.Len(uint(c)) - 1
	if k >= poolClasses {
		return -1
	}
	return k
}

func (p *bufPool) acquireF64(n int) []float64 {
	if n < 0 {
		panic("mpi: negative buffer size")
	}
	if !p.disabled {
		if k := classFor(n); k < poolClasses {
			if l := p.f64[k]; len(l) > 0 {
				buf := l[len(l)-1]
				p.f64[k] = l[:len(l)-1]
				p.hits++
				return buf[:n]
			}
			p.misses++
			return make([]float64, n, 1<<k)
		}
		p.misses++
	}
	return make([]float64, n)
}

func (p *bufPool) releaseF64(buf []float64) {
	if p.disabled || buf == nil {
		return
	}
	k := storeClassFor(cap(buf))
	if k < 0 || len(p.f64[k]) >= poolDepth {
		return
	}
	p.f64[k] = append(p.f64[k], buf[:0])
}

func (p *bufPool) acquireI64(n int) []int64 {
	if n < 0 {
		panic("mpi: negative buffer size")
	}
	if !p.disabled {
		if k := classFor(n); k < poolClasses {
			if l := p.i64[k]; len(l) > 0 {
				buf := l[len(l)-1]
				p.i64[k] = l[:len(l)-1]
				p.hits++
				return buf[:n]
			}
			p.misses++
			return make([]int64, n, 1<<k)
		}
		p.misses++
	}
	return make([]int64, n)
}

func (p *bufPool) releaseI64(buf []int64) {
	if p.disabled || buf == nil {
		return
	}
	k := storeClassFor(cap(buf))
	if k < 0 || len(p.i64[k]) >= poolDepth {
		return
	}
	p.i64[k] = append(p.i64[k], buf[:0])
}

func (p *bufPool) acquireBytes(n int) []byte {
	if n < 0 {
		panic("mpi: negative buffer size")
	}
	if !p.disabled {
		if k := classFor(n); k < poolClasses {
			if l := p.raw[k]; len(l) > 0 {
				buf := l[len(l)-1]
				p.raw[k] = l[:len(l)-1]
				p.hits++
				return buf[:n]
			}
			p.misses++
			return make([]byte, n, 1<<k)
		}
		p.misses++
	}
	return make([]byte, n)
}

func (p *bufPool) releaseBytes(buf []byte) {
	if p.disabled || buf == nil {
		return
	}
	k := storeClassFor(cap(buf))
	if k < 0 || len(p.raw[k]) >= poolDepth {
		return
	}
	p.raw[k] = append(p.raw[k], buf[:0])
}

// copyF64 acquires a pooled buffer and copies data into it — the eager
// send path.
func (p *bufPool) copyF64(data []float64) []float64 {
	buf := p.acquireF64(len(data))
	copy(buf, data)
	return buf
}

func (p *bufPool) copyI64(data []int64) []int64 {
	buf := p.acquireI64(len(data))
	copy(buf, data)
	return buf
}

func (p *bufPool) copyBytes(data []byte) []byte {
	buf := p.acquireBytes(len(data))
	copy(buf, data)
	return buf
}

// AcquireF64 hands the caller a pooled float64 buffer of length n —
// typically to fill and pass to SendOwned for a copy-free send.
func (c *Comm) AcquireF64(n int) []float64 { return c.pool.acquireF64(n) }

// ReleaseF64 returns a buffer to this rank's pool. The caller must not
// touch the slice afterwards. Releasing foreign slices is allowed (any
// capacity is binned conservatively); releasing the same buffer twice
// is a caller bug the pool cannot detect.
func (c *Comm) ReleaseF64(buf []float64) { c.pool.releaseF64(buf) }

// AcquireI64 hands the caller a pooled int64 buffer of length n.
func (c *Comm) AcquireI64(n int) []int64 { return c.pool.acquireI64(n) }

// ReleaseI64 returns an int64 buffer to this rank's pool.
func (c *Comm) ReleaseI64(buf []int64) { c.pool.releaseI64(buf) }

// ReleaseBytes returns a byte buffer to this rank's pool.
func (c *Comm) ReleaseBytes(buf []byte) { c.pool.releaseBytes(buf) }
