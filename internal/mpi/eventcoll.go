package mpi

import "fmt"

// Resumable (state-machine) collectives for the event scheduler. Each
// mirrors its blocking counterpart operation for operation — the same
// sends, receives, pool traffic and context tags in the same order —
// so virtual times, results and counters are bit-identical between
// World.Run and World.RunEvent. The pattern: Start once, then call
// Step from Proc.Resume until it reports true; a false means a receive
// is pending — return from Resume and re-Step on the next dispatch.
// Re-entry lands on the receive that blocked (loop indices persist;
// send-then-recv rounds carry a sent flag so nothing is re-sent).
//
// On a goroutine-mode world TryRecv blocks like Recv, so the same
// state-machine code runs under either scheduler.

// groupReduceState is the resumable groupReduceInto.
type groupReduceState struct {
	base, stride, count, rootIdx int
	op                           Op
	buf                          []float64
	dist                         int
	root                         bool
}

func (s *groupReduceState) start(base, stride, count, rootIdx int, op Op, buf []float64) {
	*s = groupReduceState{base: base, stride: stride, count: count, rootIdx: rootIdx, op: op, buf: buf, dist: 1}
}

func (s *groupReduceState) step(c *Comm) bool {
	if s.count <= 1 {
		s.root = true
		return true
	}
	idx := (c.rank - s.base) / s.stride
	vrank := (idx - s.rootIdx + s.count) % s.count
	for ; s.dist < s.count; s.dist *= 2 {
		if vrank%(2*s.dist) == 0 {
			if src := vrank + s.dist; src < s.count {
				m, ok := c.tryRecv(groupMember(s.base, s.stride, s.count, s.rootIdx, src), tagReduce)
				if !ok {
					return false
				}
				c.foldReduce(s.op, s.buf, m.f64)
			}
		} else {
			c.sendF64(groupMember(s.base, s.stride, s.count, s.rootIdx, vrank-s.dist), tagReduce, s.buf, false)
			s.dist = s.count
			s.root = false
			return true
		}
	}
	s.root = vrank == 0
	return true
}

// groupBcastState is the resumable groupBcastInto.
type groupBcastState struct {
	base, stride, count, rootIdx int
	buf                          []float64
	dist                         int
}

func (s *groupBcastState) start(base, stride, count, rootIdx int, buf []float64) {
	top := 1
	for top < count {
		top *= 2
	}
	*s = groupBcastState{base: base, stride: stride, count: count, rootIdx: rootIdx, buf: buf, dist: top / 2}
}

func (s *groupBcastState) step(c *Comm) bool {
	if s.count <= 1 {
		return true
	}
	idx := (c.rank - s.base) / s.stride
	vrank := (idx - s.rootIdx + s.count) % s.count
	for ; s.dist >= 1; s.dist /= 2 {
		switch vrank % (2 * s.dist) {
		case 0:
			if dst := vrank + s.dist; dst < s.count {
				c.sendF64(groupMember(s.base, s.stride, s.count, s.rootIdx, dst), tagBcast, s.buf, false)
			}
		case s.dist:
			m, ok := c.tryRecv(groupMember(s.base, s.stride, s.count, s.rootIdx, vrank-s.dist), tagBcast)
			if !ok {
				return false
			}
			c.absorbBcast(s.buf, m.f64)
		}
	}
	return true
}

// recDblState is the resumable allreduceRecDbl (native mode).
type recDblState struct {
	op            Op
	buf           []float64
	phase         int // 0 pre-fold, 1 exchange, 2 post-fold, 3 done
	dist, newrank int
	q, extra      int
	sent          bool
}

func (s *recDblState) start(c *Comm, op Op, buf []float64) {
	p := c.Size()
	q := 1
	for q*2 <= p {
		q *= 2
	}
	*s = recDblState{op: op, buf: buf, q: q, extra: p - q, newrank: c.rank - (p - q), dist: 1}
}

func (s *recDblState) step(c *Comm) bool {
	if c.Size() == 1 || s.phase == 3 {
		s.phase = 3
		return true
	}
	r := c.rank
	if s.phase == 0 {
		if r < 2*s.extra {
			if r%2 == 0 {
				c.sendF64(r+1, tagAllreduce, s.buf, false)
				s.newrank = -1
			} else {
				m, ok := c.tryRecv(r-1, tagAllreduce)
				if !ok {
					return false
				}
				if len(m.f64) != len(s.buf) {
					panic(fmt.Sprintf("mpi: allreduce length mismatch %d vs %d", len(m.f64), len(s.buf)))
				}
				for i := range s.buf {
					s.buf[i] = s.op(m.f64[i], s.buf[i]) // r-1 is the lower block
				}
				c.pool.releaseF64(m.f64)
				s.newrank = r / 2
			}
		}
		s.phase = 1
	}
	if s.phase == 1 {
		if s.newrank >= 0 {
			for ; s.dist < s.q; s.dist *= 2 {
				pn := s.newrank ^ s.dist
				partner := pn + s.extra
				if pn < s.extra {
					partner = pn*2 + 1
				}
				if !s.sent {
					c.sendF64(partner, tagAllreduce, s.buf, false)
					s.sent = true
				}
				m, ok := c.tryRecv(partner, tagAllreduce)
				if !ok {
					return false
				}
				if len(m.f64) != len(s.buf) {
					panic(fmt.Sprintf("mpi: allreduce length mismatch %d vs %d", len(m.f64), len(s.buf)))
				}
				if s.newrank < pn {
					for i := range s.buf {
						s.buf[i] = s.op(s.buf[i], m.f64[i])
					}
				} else {
					for i := range s.buf {
						s.buf[i] = s.op(m.f64[i], s.buf[i])
					}
				}
				c.pool.releaseF64(m.f64)
				s.sent = false
			}
		}
		s.phase = 2
	}
	if r < 2*s.extra {
		if r%2 == 0 {
			m, ok := c.tryRecv(r+1, tagAllreduce)
			if !ok {
				return false
			}
			copy(s.buf, m.f64)
			c.pool.releaseF64(m.f64)
		} else {
			c.sendF64(r-1, tagAllreduce, s.buf, false)
		}
	}
	s.phase = 3
	return true
}

// AllreduceState is the resumable AllreduceInto: the same dispatch
// (hierarchical on shaped fabrics, recursive doubling in native mode,
// classic reduce+broadcast otherwise) with identical message and pool
// sequences. Embed it in a Proc, Start once, Step until true.
type AllreduceState struct {
	op      Op
	buf     []float64
	mode    int // 0 classic, 1 native, 2 hierarchical
	stage   int
	w       int
	red     groupReduceState
	bc      groupBcastState
	rd      recDblState
	prevCtx int
}

// Start begins the allreduce of buf (combined in place on every rank).
func (s *AllreduceState) Start(c *Comm, op Op, buf []float64) {
	s.op, s.buf = op, buf
	s.prevCtx = c.enterCollective(ctxAllreduce)
	s.stage = 0
	p := c.Size()
	if w := c.hierWidth(); w > 0 {
		s.mode = 2
		s.w = w
		base := (c.rank / w) * w
		s.red.start(base, 1, min(w, p-base), 0, op, buf)
	} else if c.world.cfg.Native {
		s.mode = 1
		s.rd.start(c, op, buf)
	} else {
		s.mode = 0
		s.red.start(0, 1, p, 0, op, buf)
	}
}

// Step advances the allreduce; false means a receive is pending.
func (s *AllreduceState) Step(c *Comm) bool {
	switch s.mode {
	case 1:
		if !s.rd.step(c) {
			return false
		}
	case 0:
		if s.stage == 0 {
			if !s.red.step(c) {
				return false
			}
			s.bc.start(0, 1, c.Size(), 0, s.buf)
			s.stage = 1
		}
		if !s.bc.step(c) {
			return false
		}
	default:
		p := c.Size()
		base := (c.rank / s.w) * s.w
		n := min(s.w, p-base)
		g := (p + s.w - 1) / s.w
		if s.stage == 0 { // reduce within the group onto its leader
			if !s.red.step(c) {
				return false
			}
			if c.rank == base {
				s.red.start(0, s.w, g, 0, s.op, s.buf)
				s.stage = 1
			} else {
				s.bc.start(base, 1, n, 0, s.buf)
				s.stage = 3
			}
		}
		if s.stage == 1 { // reduce across leaders onto rank 0
			if !s.red.step(c) {
				return false
			}
			s.bc.start(0, s.w, g, 0, s.buf)
			s.stage = 2
		}
		if s.stage == 2 { // broadcast back across leaders
			if !s.bc.step(c) {
				return false
			}
			s.bc.start(base, 1, n, 0, s.buf)
			s.stage = 3
		}
		if !s.bc.step(c) { // broadcast within the group
			return false
		}
	}
	c.exitCollective(s.prevCtx)
	return true
}

// AllgatherIntoState is the resumable AllgatherInto (equal-length
// contributions ring-gathered into a flat out buffer).
type AllgatherIntoState struct {
	out, cur    []float64
	n, step     int
	owned, sent bool
	prevCtx     int
}

// Start begins the allgather of data into out (len(out) == p*len(data)).
func (s *AllgatherIntoState) Start(c *Comm, data, out []float64) {
	s.prevCtx = c.enterCollective(ctxAllgather)
	p := c.Size()
	s.n = len(data)
	if len(out) != p*s.n {
		panic(fmt.Sprintf("mpi: allgather out length %d, want %d", len(out), p*s.n))
	}
	copy(out[c.rank*s.n:], data)
	s.out = out
	s.cur = data
	s.step = 0
	s.owned, s.sent = false, false
}

// Step advances the allgather; false means a receive is pending.
func (s *AllgatherIntoState) Step(c *Comm) bool {
	p := c.Size()
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	for ; s.step < p-1; s.step++ {
		if !s.sent {
			if s.owned {
				c.sendDisposableF64(right, tagAllgather, s.cur)
			} else {
				c.sendF64(right, tagAllgather, s.cur, false)
			}
			s.sent = true
		}
		m, ok := c.tryRecv(left, tagAllgather)
		if !ok {
			return false
		}
		if len(m.f64) != s.n {
			panic(fmt.Sprintf("mpi: allgather length mismatch %d vs %d", len(m.f64), s.n))
		}
		src := (c.rank - s.step - 1 + p) % p
		copy(s.out[src*s.n:], m.f64)
		s.cur = m.f64
		s.owned = true
		s.sent = false
	}
	if s.owned {
		c.pool.releaseF64(s.cur)
	}
	c.exitCollective(s.prevCtx)
	return true
}

// AlltoallIntsState is the resumable AlltoallInts. Rows of Out() are
// pooled buffers, recyclable with ReleaseI64.
type AlltoallIntsState struct {
	send, out [][]int64
	step      int
	sent      bool
	prevCtx   int
}

// Start begins the personalized exchange (send[d] goes to rank d).
func (s *AlltoallIntsState) Start(c *Comm, send [][]int64) {
	s.prevCtx = c.enterCollective(ctxAlltoall)
	p := c.Size()
	if len(send) != p {
		panic("mpi: alltoall needs one slice per rank")
	}
	s.send = send
	s.out = make([][]int64, p)
	s.out[c.rank] = c.pool.copyI64(send[c.rank])
	s.step = 1
	s.sent = false
}

// Step advances the exchange; false means a receive is pending.
func (s *AlltoallIntsState) Step(c *Comm) bool {
	p := c.Size()
	for ; s.step < p; s.step++ {
		dst := (c.rank + s.step) % p
		src := (c.rank - s.step + p) % p
		if !s.sent {
			c.sendI64(dst, tagAlltoall, s.send[dst], false)
			s.sent = true
		}
		m, ok := c.tryRecv(src, tagAlltoall)
		if !ok {
			return false
		}
		s.out[src] = m.i64
		s.sent = false
	}
	c.exitCollective(s.prevCtx)
	return true
}

// Out returns the exchange result (element s came from rank s).
func (s *AlltoallIntsState) Out() [][]int64 { return s.out }
