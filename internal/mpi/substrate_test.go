package mpi

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// testDepth keeps test worlds cheap: channel buffers are preallocated,
// and these programs never queue more than a handful of messages.
const testDepth = 64

// allreduceMallocs runs iters in-place allreduces on every rank of a
// p-rank world, after a warmup that fills the buffer pools, and returns
// the process-wide allocation count across the measured phase. The
// measurement is bracketed by barrier pairs: a rank cannot leave a
// dissemination barrier before every rank has entered it, so rank 0's
// MemStats readings happen strictly before and strictly after all
// measured work, and barrier messages themselves carry no payload.
func allreduceMallocs(t *testing.T, cfg Config, p, n, iters int) uint64 {
	t.Helper()
	cfg.ChannelDepth = testDepth
	w, err := NewWorldWithConfig(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	err = w.Run(func(c *Comm) error {
		buf := make([]float64, n)
		for i := 0; i < 8; i++ { // warmup: reach buffer-flow equilibrium
			buf[0] = float64(c.Rank() + i)
			c.AllreduceInto(Sum, buf)
		}
		c.Barrier()
		if c.Rank() == 0 {
			runtime.ReadMemStats(&before)
		}
		c.Barrier() // nobody starts measured work before the reading
		for i := 0; i < iters; i++ {
			buf[0] = float64(c.Rank() - i)
			c.AllreduceInto(Sum, buf)
		}
		c.Barrier() // all measured work done before the reading
		if c.Rank() == 0 {
			runtime.ReadMemStats(&after)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return after.Mallocs - before.Mallocs
}

func TestAllreduceSteadyStateAllocFree(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const iters = 300
	got := allreduceMallocs(t, Config{}, 8, 64, iters)
	// The steady state must be allocation-free: every wire buffer comes
	// from a pool, and the reduce-down/bcast-up flow returns exactly as
	// many buffers to each rank as it sends. The only slack allowed is
	// runtime background noise, far below one allocation per operation.
	if got > iters/10 {
		t.Fatalf("pooled allreduce steady state: %d mallocs over %d iterations", got, iters)
	}
}

func TestPooledAllreduceAllocAdvantage(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const iters = 200
	pooled := allreduceMallocs(t, Config{}, 8, 64, iters)
	unpooled := allreduceMallocs(t, Config{DisablePool: true}, 8, 64, iters)
	// The acceptance bar for this substrate: pooling cuts the hot-path
	// allocation rate by at least 5x (in practice it goes to ~zero,
	// against ~2 allocations per message unpooled).
	if 5*(pooled+1) > unpooled {
		t.Fatalf("pooling advantage too small: pooled=%d unpooled=%d over %d iterations",
			pooled, unpooled, iters)
	}
}

func TestPoolStatsDeterministic(t *testing.T) {
	run := func() (int64, int64) {
		w, err := NewWorldWithConfig(6, Config{ChannelDepth: testDepth})
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(c *Comm) error {
			buf := make([]float64, 100)
			for i := 0; i < 20; i++ {
				buf[0] = float64(c.Rank())
				c.AllreduceInto(Sum, buf)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.PoolStats()
	}
	h1, m1 := run()
	h2, m2 := run()
	if h1 != h2 || m1 != m2 {
		t.Fatalf("pool stats vary across identical runs: (%d,%d) vs (%d,%d)", h1, m1, h2, m2)
	}
	if h1 == 0 {
		t.Fatal("no pool hits in a repeated allreduce")
	}
}

func TestEagerAndRendezvousAccounting(t *testing.T) {
	big := DefaultRendezvousThreshold / 8 // floats: exactly at the threshold
	w, err := NewWorldWithConfig(2, Config{ChannelDepth: testDepth})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1, 2, 3}) // copied: eager
			own := c.AcquireF64(big)
			own[0] = 42
			c.SendOwned(1, 1, own) // ownership transfer: rendezvous
		} else {
			c.ReleaseF64(c.Recv(0, 0))
			got := c.Recv(0, 1)
			if got[0] != 42 {
				return fmt.Errorf("owned payload corrupted: %v", got[0])
			}
			c.ReleaseF64(got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := obs.NewSnapshot()
	w.Collect(s)
	if got := s.Counter("mpi.msgs.eager"); got != 1 {
		t.Errorf("mpi.msgs.eager = %d, want 1", got)
	}
	if got := s.Counter("mpi.msgs.rendezvous"); got != 1 {
		t.Errorf("mpi.msgs.rendezvous = %d, want 1", got)
	}
}

func TestSendOwnedTransfersBackingArray(t *testing.T) {
	w, err := NewWorldWithConfig(2, Config{ChannelDepth: testDepth})
	if err != nil {
		t.Fatal(err)
	}
	var sentPtr, gotPtr *float64
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			buf := c.AcquireF64(16)
			sentPtr = &buf[0]
			c.SendOwned(1, 0, buf)
		} else {
			got := c.Recv(0, 0)
			gotPtr = &got[0]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sentPtr != gotPtr {
		t.Fatal("SendOwned copied the payload instead of transferring it")
	}
}

func TestCollectiveByteAccounting(t *testing.T) {
	w, err := NewWorldWithConfig(4, Config{ChannelDepth: testDepth})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		buf := make([]float64, 32)
		c.AllreduceInto(Sum, buf)
		if c.Rank() == 0 {
			c.Send(1, 9, make([]float64, 10))
		} else if c.Rank() == 1 {
			c.ReleaseF64(c.Recv(0, 9))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := obs.NewSnapshot()
	w.Collect(s)
	if got := s.Counter("mpi.bytes.p2p"); got != 80 {
		t.Errorf("mpi.bytes.p2p = %d, want 80", got)
	}
	if got := s.Counter("mpi.bytes.allreduce"); got == 0 {
		t.Error("allreduce traffic not attributed to mpi.bytes.allreduce")
	}
	var byCtx uint64
	for _, name := range ctxNames {
		byCtx += s.Counter("mpi.bytes." + name)
	}
	if byCtx != uint64(w.TotalBytes()) {
		t.Errorf("per-collective bytes sum to %d, world total is %d", byCtx, w.TotalBytes())
	}
}

func TestWatchdogBreaksDeadlockWithDiagnostic(t *testing.T) {
	w, err := NewWorldWithConfig(2, Config{
		WatchdogTimeout: 50 * time.Millisecond,
		ChannelDepth:    testDepth,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Recv(1, 42) // never sent: rank 1 exits immediately
		}
		return nil
	})
	if err == nil {
		t.Fatal("mismatched recv did not error")
	}
	for _, want := range []string{"watchdog", "rank 0", "recv(src=1, tag=42)"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnostic %q missing from error: %v", want, err)
		}
	}
}

func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	// A slow-but-progressing program must not trip the watchdog: the
	// timer watches message progress, not wall time of the whole run.
	w, err := NewWorldWithConfig(2, Config{
		WatchdogTimeout: 100 * time.Millisecond,
		ChannelDepth:    testDepth,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		for i := 0; i < 4; i++ {
			time.Sleep(40 * time.Millisecond)
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("healthy run tripped the watchdog: %v", err)
	}
}

// fanInTime runs a p-rank fan-in of n floats per sender to rank 0 and
// returns the makespan.
func fanInTime(t *testing.T, p, n int, contended bool) float64 {
	t.Helper()
	f := netsim.FastEthernet()
	f.PortContention = contended
	w, err := NewWorldWithConfig(p, Config{Fabric: f, ChannelDepth: testDepth})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for src := 1; src < p; src++ {
				c.ReleaseF64(c.Recv(src, 0))
			}
		} else {
			c.Send(0, 0, make([]float64, n))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w.MaxTime()
}

func TestPortContentionSerializesFanIn(t *testing.T) {
	const p, n = 8, 1 << 12
	on := fanInTime(t, p, n, true)
	off := fanInTime(t, p, n, false)
	if on <= off {
		t.Fatalf("contended fan-in (%g) not slower than uncontended (%g)", on, off)
	}
	// The emergent contended time must equal the analytical fan-in
	// exactly: p-1 simultaneous arrivals serialized by one egress port.
	f := netsim.FastEthernet()
	f.PortContention = true
	want := f.FanIn(p, n*8)
	if math.Abs(on-want)/want > 1e-9 {
		t.Fatalf("contended fan-in %g, analytical %g", on, want)
	}
}

func TestContentionOffMatchesLegacyWorld(t *testing.T) {
	// With the flag off the substrate must reproduce the historical
	// uncontended model bit-for-bit.
	legacy := func() float64 {
		w, err := NewWorld(6, netsim.FastEthernet())
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				for src := 1; src < 6; src++ {
					c.ReleaseF64(c.Recv(src, 0))
				}
			} else {
				c.Send(0, 0, make([]float64, 512))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.MaxTime()
	}
	if got, want := fanInTime(t, 6, 512, false), legacy(); got > want || got < want {
		t.Fatalf("uncontended fan-in %v differs from legacy model %v",
			math.Float64bits(got), math.Float64bits(want))
	}
}

func TestContentionDelayRecorded(t *testing.T) {
	f := netsim.FastEthernet()
	f.PortContention = true
	w, err := NewWorldWithConfig(4, Config{Fabric: f, ChannelDepth: testDepth})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for src := 1; src < 4; src++ {
				c.ReleaseF64(c.Recv(src, 0))
			}
		} else {
			c.Send(0, 0, make([]float64, 1024))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := obs.NewSnapshot()
	w.Collect(s)
	d, ok := s.Lookup("mpi.contention.delay")
	if !ok || d.Float <= 0 {
		t.Fatalf("mpi.contention.delay = %v (present=%v), want > 0", d.Float, ok)
	}
}

func TestNativeBcastAllSizesAllRoots(t *testing.T) {
	// Small segments force the pipelined ring through many segments.
	for _, p := range worldSizes() {
		for root := 0; root < p; root++ {
			w, err := NewWorldWithConfig(p, Config{
				Native: true, SegmentBytes: 256, ChannelDepth: testDepth,
			})
			if err != nil {
				t.Fatal(err)
			}
			err = w.Run(func(c *Comm) error {
				const n = 200 // 1600 B: several 256 B segments
				buf := make([]float64, n)
				if c.Rank() == root {
					for i := range buf {
						buf[i] = float64(root*1000 + i)
					}
				}
				c.BcastInto(root, buf)
				for i := range buf {
					if buf[i] != float64(root*1000+i) {
						return fmt.Errorf("rank %d buf[%d] = %v", c.Rank(), i, buf[i])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestNativeAllreduceCorrectAndBitIdenticalAcrossRanks(t *testing.T) {
	// Non-power-of-two sizes exercise the recursive-doubling fold-in
	// scheme; the irrational-ish values exercise FP non-associativity, so
	// cross-rank equality only holds if every rank evaluates the same
	// reduction tree.
	for _, p := range worldSizes() {
		w, err := NewWorldWithConfig(p, Config{Native: true, ChannelDepth: testDepth})
		if err != nil {
			t.Fatal(err)
		}
		const n = 33
		results := make([][]float64, p)
		err = w.Run(func(c *Comm) error {
			buf := make([]float64, n)
			for i := range buf {
				buf[i] = 1.0 / float64(c.Rank()+i+1)
			}
			c.AllreduceInto(Sum, buf)
			results[c.Rank()] = buf
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for r := 1; r < p; r++ {
			for i := range results[0] {
				if math.Float64bits(results[r][i]) != math.Float64bits(results[0][i]) {
					t.Fatalf("p=%d: rank %d element %d differs from rank 0: %v vs %v",
						p, r, i, results[r][i], results[0][i])
				}
			}
		}
		// Sanity: within FP tolerance of the ideal sum.
		for i := 0; i < n; i++ {
			var want float64
			for r := 0; r < p; r++ {
				want += 1.0 / float64(r+i+1)
			}
			if math.Abs(results[0][i]-want) > 1e-12*math.Abs(want) {
				t.Fatalf("p=%d element %d: %v vs %v", p, i, results[0][i], want)
			}
		}
	}
}

func TestNativeAllreduceMaxMin(t *testing.T) {
	for _, p := range []int{3, 8, 13} {
		w, err := NewWorldWithConfig(p, Config{Native: true, ChannelDepth: testDepth})
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(c *Comm) error {
			v := []float64{float64(c.Rank()), -float64(c.Rank())}
			got := c.Allreduce(Max, v)
			if got[0] != float64(p-1) || got[1] != 0 {
				return fmt.Errorf("max: %v", got)
			}
			got = c.Allreduce(Min, v)
			if got[0] != 0 || got[1] != -float64(p-1) {
				return fmt.Errorf("min: %v", got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// collectiveTime runs one collective on a fresh world and returns the
// emergent makespan.
func collectiveTime(t *testing.T, p, n int, native bool, body func(c *Comm, buf []float64)) float64 {
	t.Helper()
	w, err := NewWorldWithConfig(p, Config{
		Fabric: netsim.FastEthernet(), Native: native, ChannelDepth: testDepth,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		buf := make([]float64, n)
		for i := range buf {
			buf[i] = float64(c.Rank() + i)
		}
		body(c, buf)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w.MaxTime()
}

func TestEmergentTimesTrackAnalyticalFormulas(t *testing.T) {
	// The virtual times that emerge from the message-by-message
	// simulation must track netsim's closed-form estimates across rank
	// counts and payload sizes, for both the classic and the native
	// algorithms. The windows are deliberately loose for the classic
	// tree algorithms (the formulas idealize away relay serialization)
	// and tighter for the native ones, which mirror their formulas.
	fab := netsim.FastEthernet()
	sizes := []int{8, 1 << 10, 64 << 10, 4 << 20}
	if testing.Short() {
		sizes = sizes[:3]
	}
	for _, p := range []int{2, 4, 8, 16, 24, 32} {
		for _, bytes := range sizes {
			n := bytes / 8
			type tc struct {
				name   string
				got    float64
				want   float64
				lo, hi float64
			}
			cases := []tc{
				{"allreduce/classic",
					collectiveTime(t, p, n, false, func(c *Comm, buf []float64) { c.AllreduceInto(Sum, buf) }),
					fab.Allreduce(p, bytes), 0.25, 2.0},
				{"allreduce/native",
					collectiveTime(t, p, n, true, func(c *Comm, buf []float64) { c.AllreduceInto(Sum, buf) }),
					fab.AllreduceRecDbl(p, bytes), 0.5, 1.6},
				{"bcast/classic",
					collectiveTime(t, p, n, false, func(c *Comm, buf []float64) { c.BcastInto(0, buf) }),
					fab.Bcast(p, bytes), 0.25, 2.0},
				{"bcast/native",
					collectiveTime(t, p, n, true, func(c *Comm, buf []float64) { c.BcastInto(0, buf) }),
					fab.BcastPipelined(p, bytes, DefaultSegmentBytes), 0.5, 1.6},
			}
			for _, c := range cases {
				if c.got < c.want*c.lo || c.got > c.want*c.hi {
					t.Errorf("p=%d bytes=%d %s: emergent %.3g vs analytical %.3g (ratio %.2f)",
						p, bytes, c.name, c.got, c.want, c.got/c.want)
				}
			}
		}
	}
}

func TestPooledDisabledCollectivesBitIdentical(t *testing.T) {
	// Pooling is a pure transport optimization: every collective must
	// produce bitwise-identical results and virtual times without it.
	run := func(disable bool) (bits []uint64, maxT float64) {
		w, err := NewWorldWithConfig(9, Config{
			Fabric: netsim.FastEthernet(), DisablePool: disable, ChannelDepth: testDepth,
		})
		if err != nil {
			t.Fatal(err)
		}
		sums := make([]float64, 9)
		err = w.Run(func(c *Comm) error {
			buf := make([]float64, 50)
			for i := range buf {
				buf[i] = math.Sqrt(float64(c.Rank()*100 + i + 2))
			}
			c.AllreduceInto(Sum, buf)
			c.BcastInto(3, buf)
			c.ReduceInto(0, Sum, buf)
			all := c.Allgather(buf[:5])
			var s float64
			for _, row := range all {
				for _, v := range row {
					s += v
				}
			}
			for _, v := range buf {
				s += v
			}
			sums[c.Rank()] = s
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		bits = make([]uint64, 9)
		for i, v := range sums {
			bits[i] = math.Float64bits(v)
		}
		return bits, w.MaxTime()
	}
	pb, pt := run(false)
	ub, ut := run(true)
	if math.Float64bits(pt) != math.Float64bits(ut) {
		t.Fatalf("makespan differs: pooled %v vs unpooled %v", pt, ut)
	}
	for i := range pb {
		if pb[i] != ub[i] {
			t.Fatalf("rank %d results differ: pooled %x vs unpooled %x", i, pb[i], ub[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewWorldWithConfig(0, Config{}); err == nil {
		t.Fatal("size 0 accepted")
	}
	bad := netsim.FastEthernet()
	bad.ReduceOpSecPerElem = -1
	if _, err := NewWorldWithConfig(2, Config{Fabric: bad}); err == nil {
		t.Fatal("negative reduce-op cost accepted")
	}
}
