package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/kernels"
)

func allArchs() []*Arch {
	return []*Arch{
		PentiumIII500(), AlphaEV56_533(), Power3_375(), AthlonMP1200(),
		Pentium4_1300(), PentiumPro200(), PentiumII333(), R10000_250(),
		Power2_66(), Alpha21064_150(), SuperSPARC40(),
	}
}

func TestAllArchsValidate(t *testing.T) {
	for _, a := range allArchs() {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	a := PentiumIII500()
	a.ClockMHz = 0
	if err := a.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
	a = PentiumIII500()
	a.IssueWidth = 0
	if err := a.Validate(); err == nil {
		t.Error("zero issue width accepted")
	}
	a = PentiumIII500()
	a.Window = 0
	if err := a.Validate(); err == nil {
		t.Error("OoO with zero window accepted")
	}
	a = PentiumIII500()
	a.FPDiv.Count = 0
	if err := a.Validate(); err == nil {
		t.Error("zero-unit pool accepted")
	}
	a = PentiumIII500()
	a.PredictAccuracy = 1.5
	if err := a.Validate(); err == nil {
		t.Error("accuracy > 1 accepted")
	}
	a = PentiumIII500()
	a.LoadMissRate = -0.1
	if err := a.Validate(); err == nil {
		t.Error("negative miss rate accepted")
	}
}

func TestRunPreservesSemantics(t *testing.T) {
	// Timing must not change architectural results: compare against the
	// reference interpreter.
	src := `
		movi r1, 0
		movi r2, 1
		fmovi f0, 1.0
	loop:
		add  r1, r1, r2
		fadd f0, f0, f0
		fsqrt f1, f0
		cmpi r1, 20
		jl   loop
		hlt
	`
	p := isa.MustAssemble(src)
	ref := isa.NewState(0)
	if err := isa.Run(p, ref, nil, 0); err != nil {
		t.Fatal(err)
	}
	for _, a := range allArchs() {
		st := isa.NewState(0)
		if _, err := a.Run(p, st, 0); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if !ref.Equal(st) {
			t.Fatalf("%s: architectural state diverged", a.Name)
		}
	}
}

func TestThroughputBoundRespected(t *testing.T) {
	// Independent fsqrt stream: cycles/op must approach the sqrt unit's
	// reciprocal throughput, never beat it.
	a := Power3_375()
	k := kernels.CalibKernels()
	var sqrtKernel *kernels.CalibKernel
	for i := range k {
		if k[i].Class == isa.ClassFPSqrt {
			sqrtKernel = &k[i]
		}
	}
	if sqrtKernel == nil {
		t.Fatal("no sqrt calibration kernel")
	}
	const iters = 2000
	p, st, err := sqrtKernel.Build(iters)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(p, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	perOp := res.Cycles / float64(iters*sqrtKernel.OpsPerIteration())
	rt := a.FPSqrt.RecipThroughput
	if perOp < rt*0.99 {
		t.Fatalf("sqrt stream %f cycles/op beats unit throughput %f", perOp, rt)
	}
	if perOp > rt*1.3 {
		t.Fatalf("sqrt stream %f cycles/op far above unit throughput %f", perOp, rt)
	}
}

func TestLatencyBoundOnSerialChain(t *testing.T) {
	// A serial fadd chain runs at ~latency cycles per op on any OoO core.
	src := `
		movi r1, 0
		fmovi f0, 1.0
	loop:
		fadd f0, f0, f0
		fadd f0, f0, f0
		fadd f0, f0, f0
		fadd f0, f0, f0
		addi r1, r1, 1
		cmpi r1, 500
		jl loop
		hlt
	`
	p := isa.MustAssemble(src)
	a := Power3_375()
	st := isa.NewState(0)
	res, err := a.Run(p, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	perAdd := res.Cycles / (500 * 4)
	lat := a.FPAdd.Latency
	if perAdd < lat*0.95 || perAdd > lat*1.2 {
		t.Fatalf("serial fadd chain %f cycles/op, want ≈ latency %f", perAdd, lat)
	}
}

func TestIndependentStreamsBeatSerialChain(t *testing.T) {
	serial := `
		movi r1, 0
	loop:
		fadd f0, f0, f2
		fadd f0, f0, f2
		fadd f0, f0, f2
		fadd f0, f0, f2
		addi r1, r1, 1
		cmpi r1, 300
		jl loop
		hlt
	`
	parallel := `
		movi r1, 0
	loop:
		fadd f3, f0, f2
		fadd f4, f0, f2
		fadd f5, f0, f2
		fadd f6, f0, f2
		addi r1, r1, 1
		cmpi r1, 300
		jl loop
		hlt
	`
	a := AthlonMP1200()
	run := func(src string) float64 {
		p := isa.MustAssemble(src)
		st := isa.NewState(0)
		res, err := a.Run(p, st, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	s, par := run(serial), run(parallel)
	if par*1.5 > s {
		t.Fatalf("independent adds (%f) not meaningfully faster than serial chain (%f)", par, s)
	}
}

func TestInOrderSlowerThanOoOOnSameSpec(t *testing.T) {
	// The same core run in-order must never beat its out-of-order self on
	// a dependency-heavy kernel.
	g := kernels.DefaultGravMicro(kernels.GravMath)
	g.Iters = 20
	run := func(inorder bool) float64 {
		a := Power3_375()
		a.InOrder = inorder
		p, st, err := g.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run(p, st, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	ooo, ino := run(false), run(true)
	if ooo > ino {
		t.Fatalf("OoO (%f cycles) slower than in-order (%f)", ooo, ino)
	}
}

func TestBiggerWindowNotSlower(t *testing.T) {
	g := kernels.DefaultGravMicro(kernels.GravMath)
	g.Iters = 20
	run := func(window int) float64 {
		a := Power3_375()
		a.Window = window
		p, st, _ := g.Build()
		res, err := a.Run(p, st, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	small, big := run(8), run(128)
	if big > small {
		t.Fatalf("larger window slower: %f vs %f cycles", big, small)
	}
	if big >= small*0.95 {
		t.Fatalf("window size had no effect: %f vs %f", big, small)
	}
}

func TestHigherClockFasterSeconds(t *testing.T) {
	g := kernels.DefaultGravMicro(kernels.GravMath)
	g.Iters = 10
	run := func(mhz float64) float64 {
		a := PentiumIII500()
		a.ClockMHz = mhz
		p, st, _ := g.Build()
		res, err := a.Run(p, st, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	if run(1000) >= run(500) {
		t.Fatal("doubling the clock did not reduce seconds")
	}
}

func TestRunFuel(t *testing.T) {
	p := isa.MustAssemble("spin: jmp spin")
	a := PentiumIII500()
	st := isa.NewState(0)
	if _, err := a.Run(p, st, 1000); err != ErrFuel {
		t.Fatalf("err = %v, want ErrFuel", err)
	}
}

func TestCrusoeProcessorInterface(t *testing.T) {
	var _ Processor = NewTM5600()
	var _ Processor = NewTM5800()
	var _ Processor = PentiumIII500().AsProcessor()

	c := NewTM5600()
	if c.ClockMHz() != 633 {
		t.Fatalf("TM5600 clock = %v", c.ClockMHz())
	}
	g := kernels.DefaultGravMicro(kernels.GravMath)
	g.Iters = 20
	p, st, _ := g.Build()
	res, err := c.RunKernel(p, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.Trace.Flops == 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

func TestTM5800FasterThanTM5600(t *testing.T) {
	// The paper: MetaBlade2's TM5800 + CMS 4.3.x is ~50% faster on the
	// treecode; at minimum it must be strictly faster on FP kernels.
	g := kernels.DefaultGravMicro(kernels.GravMath)
	g.Iters = 50
	run := func(c *Crusoe) float64 {
		p, st, _ := g.Build()
		res, err := c.RunKernel(p, st)
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	t56, t58 := run(NewTM5600()), run(NewTM5800())
	if t58 >= t56 {
		t.Fatalf("TM5800 (%g s) not faster than TM5600 (%g s)", t58, t56)
	}
}

func TestCalibrateProducesSaneCosts(t *testing.T) {
	for _, proc := range []Processor{PentiumIII500().AsProcessor(), NewTM5600()} {
		e, err := Calibrate(proc)
		if err != nil {
			t.Fatal(err)
		}
		if e.ClockMHz != proc.ClockMHz() {
			t.Fatalf("clock mismatch")
		}
		for c := isa.Class(1); c < isa.NumClasses; c++ {
			if c == isa.ClassNop {
				continue
			}
			if e.Cost[c] <= 0 {
				t.Fatalf("%s: class %d cost %f", proc.Name(), c, e.Cost[c])
			}
		}
		// Divide and sqrt must be the expensive classes.
		if e.Cost[isa.ClassFPDiv] < 2*e.Cost[isa.ClassFPAdd] {
			t.Fatalf("%s: fdiv cost %f not >> fadd cost %f", proc.Name(), e.Cost[isa.ClassFPDiv], e.Cost[isa.ClassFPAdd])
		}
	}
}

func TestEffCostsTiming(t *testing.T) {
	e := EffCosts{Processor: "x", ClockMHz: 1000}
	e.Cost[isa.ClassFPAdd] = 2
	var mix isa.Trace
	mix.ByClass[isa.ClassFPAdd] = 1000
	mix.Flops = 1000
	if got := e.Cycles(&mix); got != 2000 {
		t.Fatalf("Cycles = %f, want 2000", got)
	}
	// 2000 cycles at 1 GHz = 2 µs; 1000 flops / 2 µs = 500 Mflops.
	if got := e.Mflops(&mix); got != 500 {
		t.Fatalf("Mflops = %f, want 500", got)
	}
	if got := e.Mops(2000, &mix); got != 1000 {
		t.Fatalf("Mops = %f, want 1000", got)
	}
}

func TestTable1Shape(t *testing.T) {
	// The paper's Table 1 orderings, which the models must reproduce:
	// Math sqrt: Power3 > Athlon > TM5600 > PIII > Alpha.
	// Karp sqrt: everyone improves; Power3 and Athlon lead; the TM5600
	// "suffers a bit" (smallest relative gain among the five).
	if testing.Short() {
		t.Skip("full microkernel sweep in -short mode")
	}
	mflops := func(p Processor, v kernels.GravVariant) float64 {
		g := kernels.DefaultGravMicro(v)
		prog, st, err := g.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.RunKernel(prog, st)
		if err != nil {
			t.Fatal(err)
		}
		return res.Mflops()
	}
	cpus := EvaluationCPUs()
	math := make([]float64, len(cpus))
	karp := make([]float64, len(cpus))
	for i, p := range cpus {
		math[i] = mflops(p, kernels.GravMath)
		karp[i] = mflops(p, kernels.GravKarp)
	}
	const (
		piii = iota
		alpha
		tm
		power3
		athlon
	)
	if !(math[power3] > math[athlon] && math[athlon] > math[tm] &&
		math[tm] > math[piii] && math[piii] > math[alpha]) {
		t.Fatalf("math column ordering wrong: %v", math)
	}
	for i := range cpus {
		if karp[i] <= math[i] {
			t.Fatalf("%s: Karp (%f) not faster than Math (%f)", cpus[i].Name(), karp[i], math[i])
		}
	}
	// "The performance of the Transmeta suffers a bit with the Karp sqrt
	// benchmark" — its relative gain must trail the comparably clocked
	// PIII and Alpha (in the paper: 1.26 vs 1.57 and 2.34).
	tmGain := karp[tm] / math[tm]
	for _, i := range []int{piii, alpha} {
		if karp[i]/math[i] <= tmGain {
			t.Fatalf("%s gain %.2f not above TM5600 gain %.2f — paper says the Transmeta suffers on Karp",
				cpus[i].Name(), karp[i]/math[i], tmGain)
		}
	}
	if alpha == 0 { // keep the named constants referenced
		_ = athlon
	}
}
