package cpu

import (
	"sync"
	"sync/atomic"

	"repro/internal/cms"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vliw"
)

// Processor is a timed execution engine for mini-ISA programs: either a
// hardware superscalar model (Arch) or the full Crusoe simulation
// (CMS + VLIW).
type Processor interface {
	// Name identifies the processor (e.g. "500-MHz Intel Pentium III").
	Name() string
	// ClockMHz is the core clock.
	ClockMHz() float64
	// RunKernel executes the program to completion, timing it.
	RunKernel(p isa.Program, st *isa.State) (RunResult, error)
}

type archProcessor struct{ a *Arch }

// AsProcessor adapts an Arch to the Processor interface.
func (a *Arch) AsProcessor() Processor { return archProcessor{a} }

func (p archProcessor) Name() string      { return p.a.Name }
func (p archProcessor) ClockMHz() float64 { return p.a.ClockMHz }
func (p archProcessor) RunKernel(prog isa.Program, st *isa.State) (RunResult, error) {
	return p.a.Run(prog, st, 0)
}

// Crusoe is the TM5600/TM5800 processor model: the CMS software layer over
// the VLIW engine. By default each RunKernel starts with a cold translation
// cache, as a freshly loaded benchmark binary would; WarmStart opts into
// reusing the cache across kernels.
type Crusoe struct {
	ModelName string
	MHz       float64
	Params    cms.Params
	Timing    vliw.Timing
	// WarmStart reuses one CMS machine — and therefore its translation
	// cache and profile — across RunKernel calls, modelling a long-lived
	// process re-entering already-morphed code. The cold-cache default
	// preserves the paper's "freshly loaded binary" semantics; warm runs
	// are visible in WarmStats (cms.Stats.WarmRuns vs Runs).
	WarmStart bool
	// Gears enables the tiered CMS pipeline (interpret → quick translate
	// → superblock reoptimize, with translation chaining): RunKernel
	// applies Params.WithGears. A geared model reports a distinct Name so
	// the calibration memo never mixes geared and single-gear cost models.
	Gears bool
	// Tracer, when non-nil, is attached to every CMS machine RunKernel
	// creates, recording the interpret→translate→cache pipeline in the
	// CMS cycle domain (obs.PidCMS).
	Tracer *obs.Tracer

	warmMu sync.Mutex
	warm   *cms.Machine
}

// Clone returns a Crusoe with the same model configuration and its own
// (cold) warm-start state. Use this instead of copying a Crusoe by
// value, which would copy its internal lock.
func (c *Crusoe) Clone() *Crusoe {
	return &Crusoe{
		ModelName: c.ModelName,
		MHz:       c.MHz,
		Params:    c.Params,
		Timing:    c.Timing,
		WarmStart: c.WarmStart,
		Gears:     c.Gears,
	}
}

// gearsDefault makes newly constructed Crusoe models start with the
// tiered pipeline enabled; the drivers' -gears flag sets it.
var gearsDefault atomic.Bool

// SetGears sets the process-wide default for new Crusoe models (the
// -gears driver flag).
func SetGears(on bool) { gearsDefault.Store(on) }

// GearsDefault reports the process-wide default.
func GearsDefault() bool { return gearsDefault.Load() }

// NewTM5600 returns the 633-MHz TM5600 with CMS 4.2.x-like parameters.
func NewTM5600() *Crusoe {
	return &Crusoe{
		ModelName: "633-MHz Transmeta TM5600",
		MHz:       633,
		Params:    cms.DefaultParams(),
		Timing:    vliw.TM5600Timing(),
		Gears:     GearsDefault(),
	}
}

// NewTM5800 returns the 800-MHz TM5800 with the newer CMS 4.3.x, which the
// paper credits for MetaBlade2's ~50% higher treecode rating: higher
// clock, a hotter-triggering translator, cheaper dispatch, and a slightly
// faster FP pipeline.
func NewTM5800() *Crusoe {
	p := cms.DefaultParams()
	p.HotThreshold = 16
	p.TranslateCostPerInstr = 2400
	p.DispatchCycles = 30
	t := vliw.TM5600Timing()
	t.FDivLatency = 19
	t.FSqrtLatency = 24
	// The higher core clock runs against the same SDRAM: loads cost more
	// cycles than on the TM5600.
	t.LoadLatency = 3
	return &Crusoe{
		ModelName: "800-MHz Transmeta TM5800",
		MHz:       800,
		Params:    p,
		Timing:    t,
		Gears:     GearsDefault(),
	}
}

func (c *Crusoe) Name() string {
	if c.Gears {
		return c.ModelName + " (gears)"
	}
	return c.ModelName
}
func (c *Crusoe) ClockMHz() float64 { return c.MHz }

// runParams returns the CMS parameters RunKernel uses: the model's, with
// the tiered gears applied when enabled.
func (c *Crusoe) runParams() cms.Params {
	if c.Gears {
		return c.Params.WithGears()
	}
	return c.Params
}

// RunKernel runs the program through a CMS instance: a fresh one per
// call by default (cold translation cache), or the persistent warm
// machine when WarmStart is set.
func (c *Crusoe) RunKernel(p isa.Program, st *isa.State) (RunResult, error) {
	if c.WarmStart {
		return c.runWarm(p, st)
	}
	m := cms.NewMachine(c.runParams(), c.Timing)
	m.Tracer = c.Tracer
	cycles, tr, err := m.Run(p, st, 0)
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{
		Cycles: float64(cycles),
		Trace:  tr,
	}
	cst := m.Stats()
	res.CMS = &cst
	res.Seconds = res.Cycles / (c.MHz * 1e6)
	return res, nil
}

// runWarm executes on the persistent machine. Its cycle counters
// accumulate across runs, so this run's cost is the delta.
func (c *Crusoe) runWarm(p isa.Program, st *isa.State) (RunResult, error) {
	c.warmMu.Lock()
	defer c.warmMu.Unlock()
	if c.warm == nil {
		c.warm = cms.NewMachine(c.runParams(), c.Timing)
	}
	c.warm.Tracer = c.Tracer
	before := c.warm.Stats().TotalCycles()
	cycles, tr, err := c.warm.Run(p, st, 0)
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{
		Cycles: float64(cycles - before),
		Trace:  tr,
	}
	cst := c.warm.Stats()
	res.CMS = &cst
	res.Seconds = res.Cycles / (c.MHz * 1e6)
	return res, nil
}

// WarmStats returns the persistent warm machine's accumulated CMS
// statistics (the zero Stats before any warm-start run). Its Runs and
// WarmRuns counters distinguish cold from warm executions.
func (c *Crusoe) WarmStats() cms.Stats {
	c.warmMu.Lock()
	defer c.warmMu.Unlock()
	if c.warm == nil {
		return cms.Stats{}
	}
	return c.warm.Stats()
}

// Machine returns a fresh CMS machine with this model's parameters, for
// callers that need CMS statistics (packing density, cache behaviour).
func (c *Crusoe) Machine() *cms.Machine { return cms.NewMachine(c.runParams(), c.Timing) }
