package cpu

import (
	"sync"

	"repro/internal/obs"
)

// Calibration is deterministic for a given processor model and miss
// rate, yet every benchmark table, driver and example used to re-run the
// full per-class kernel simulations (eight kernels × 200k iterations of
// CMS+VLIW for the Crusoe) at each call site. This file memoizes
// CalibrateFor process-wide.
//
// The memo key is (processor name, clock, miss rate): a processor's name
// and clock identify its timing model everywhere in this repo. Callers
// who mutate a model's parameters without renaming it must use
// CalibrateForUncached (the ablation bypass) or ResetCalibCache.

type calibKey struct {
	name     string
	clockMHz float64
	missRate float64
}

type calibEntry struct {
	once  sync.Once
	costs EffCosts
	err   error
}

// The hit/miss counters live in an obs registry; CalibCacheCounters
// remains as a thin view over it.
var (
	calibMemo   sync.Map // calibKey -> *calibEntry
	calibReg    = obs.NewRegistry()
	calibHits   = calibReg.Counter("cpu.calib.memo.hits", "", "CalibrateFor calls served from the process-wide memo")
	calibMisses = calibReg.Counter("cpu.calib.memo.misses", "", "CalibrateFor calls that ran the full calibration")
)

// CalibMemoSource returns the obs source for the calibration memo's
// process-wide hit/miss counters (live cumulative semantics).
func CalibMemoSource() obs.Source { return calibReg }

// CalibrateFor is the memoized form of CalibrateForUncached: the first
// call for a (processor, miss rate) pair runs the full calibration
// simulations; concurrent and subsequent calls for the same pair share
// that one run. Safe for concurrent use.
func CalibrateFor(p Processor, missRate float64) (EffCosts, error) {
	key := calibKey{name: p.Name(), clockMHz: p.ClockMHz(), missRate: missRate}
	v, _ := calibMemo.LoadOrStore(key, &calibEntry{})
	e := v.(*calibEntry)
	first := false
	e.once.Do(func() {
		first = true
		e.costs, e.err = CalibrateForUncached(p, missRate)
	})
	if first {
		calibMisses.Inc()
	} else {
		calibHits.Inc()
	}
	return e.costs, e.err
}

// CalibCacheCounters reports the process-wide memo hit and miss counts
// (a call that waited on another goroutine's in-flight calibration
// counts as a hit).
func CalibCacheCounters() (hits, misses uint64) {
	return calibHits.Value(), calibMisses.Value()
}

// ResetCalibCache drops every memoized calibration and zeroes the
// counters, for tests and ablations.
func ResetCalibCache() {
	calibMemo.Range(func(k, _ any) bool {
		calibMemo.Delete(k)
		return true
	})
	calibHits.Reset()
	calibMisses.Reset()
}
