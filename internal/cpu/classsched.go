package cpu

import "math"

// classSched tracks functional-unit occupancy for one timing class.
//
// Pipelined units (RecipThroughput ≤ 1) accept a fixed number of issues
// per clock cycle; tracking per-cycle issue counts lets a younger
// instruction that becomes ready early claim a cycle an older (but
// later-issuing) instruction left idle — which a greedy "next-free time
// per unit" model cannot express. Blocking units (dividers, square-root
// units; RecipThroughput > 1) keep the per-unit next-free model, which is
// accurate for them because their use is serialized by data dependences
// in practice.
type classSched struct {
	blocking bool
	rt       float64
	// Pipelined: issues already booked per cycle index.
	bins       map[int64]int
	perCycle   int
	minLiveBin int64
	// Blocking: next-free time per unit instance.
	pool []float64
}

func newClassSched(u *UnitSpec) *classSched {
	if u.RecipThroughput > 1 {
		return &classSched{
			blocking: true,
			rt:       u.RecipThroughput,
			pool:     make([]float64, u.Count),
		}
	}
	per := int(math.Round(float64(u.Count) / u.RecipThroughput))
	if per < 1 {
		per = 1
	}
	return &classSched{
		rt:       u.RecipThroughput,
		bins:     map[int64]int{},
		perCycle: per,
	}
}

// acquire books the unit at the earliest time ≥ t and returns the issue
// time.
func (c *classSched) acquire(t float64) float64 {
	if !c.blocking {
		bin := int64(math.Floor(t))
		at := t
		for c.bins[bin] >= c.perCycle {
			bin++
			at = float64(bin)
		}
		c.bins[bin]++
		if len(c.bins) > 8192 {
			c.prune(bin)
		}
		if bin > c.minLiveBin {
			// Track a loose lower bound of useful bins for pruning.
			c.minLiveBin = bin - 4096
		}
		return at
	}
	// Blocking unit: prefer a unit already idle at t (latest such), else
	// wait for the earliest-free one.
	bestIdle, bestBusy := -1, 0
	for i := range c.pool {
		if c.pool[i] <= t {
			if bestIdle < 0 || c.pool[i] > c.pool[bestIdle] {
				bestIdle = i
			}
		}
		if c.pool[i] < c.pool[bestBusy] {
			bestBusy = i
		}
	}
	at := t
	unit := bestIdle
	if unit < 0 {
		unit = bestBusy
		at = c.pool[unit]
	}
	c.pool[unit] = at + c.rt
	return at
}

func (c *classSched) prune(current int64) {
	for b := range c.bins {
		if b < c.minLiveBin || b < current-4096 {
			delete(c.bins, b)
		}
	}
}
