package cpu

import (
	"math"
	"testing"

	"repro/internal/isa"
)

// Regression tests for derived-rate accessors: a run that recorded no
// time (or an empty mix) must report a zero rate, never NaN or ±Inf —
// downstream JSON encoding rejects NaN, and benchmark tables render it
// as garbage.

func TestRunResultMflopsGuardsZeroSeconds(t *testing.T) {
	r := RunResult{Seconds: 0, Trace: isa.Trace{Flops: 1000}}
	if got := r.Mflops(); got != 0 {
		t.Fatalf("Mflops() with zero seconds = %v, want 0", got)
	}
	r.Seconds = -1 // defensive: a broken model must not yield negative rates
	if got := r.Mflops(); got != 0 {
		t.Fatalf("Mflops() with negative seconds = %v, want 0", got)
	}
}

func TestEffCostsRatesGuardEmptyMix(t *testing.T) {
	var empty isa.Trace
	costs := EffCosts{ClockMHz: 500}
	// No per-class costs set: the modelled time is zero.
	for name, got := range map[string]float64{
		"Mflops": costs.Mflops(&empty),
		"Mops":   costs.Mops(1e6, &empty),
	} {
		if got != 0 || math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("%s on an empty mix = %v, want 0", name, got)
		}
	}
	// A zero clock degenerates Seconds to ±Inf or NaN; rates must still
	// come back finite.
	costs = EffCosts{}
	costs.Cost[isa.ClassFPAdd] = 1
	mix := isa.Trace{Flops: 10}
	mix.ByClass[isa.ClassFPAdd] = 10
	for name, got := range map[string]float64{
		"Mflops": costs.Mflops(&mix),
		"Mops":   costs.Mops(1e6, &mix),
	} {
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("%s with zero clock = %v, want finite", name, got)
		}
	}
}
