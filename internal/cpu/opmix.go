package cpu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/kernels"
)

// EffCosts is the coarse op-mix cost model: effective cycles per operation
// per timing class, calibrated by running per-class kernels through a
// processor's full model (trace-driven superscalar for hardware CPUs, the
// CMS+VLIW simulation for the Crusoe). Large workloads that are
// implemented natively in Go (NAS kernels, the treecode) count their
// operations and are timed through this model.
type EffCosts struct {
	Processor string
	ClockMHz  float64
	Cost      [isa.NumClasses]float64
}

// CalibIters is the iteration count used for calibration loops; large
// enough that the Crusoe's one-time translation cost (thousands of cycles
// per region) amortizes to noise, as it does over a real benchmark's
// billions of iterations.
const CalibIters = 200_000

// Calibrate measures the effective per-class costs of a processor.
func Calibrate(p Processor) (EffCosts, error) {
	e := EffCosts{Processor: p.Name(), ClockMHz: p.ClockMHz()}
	for _, k := range kernels.CalibKernels() {
		prog, st, err := k.Build(CalibIters)
		if err != nil {
			return e, fmt.Errorf("cpu: calibrate %s/%s: %w", p.Name(), k.Name, err)
		}
		res, err := p.RunKernel(prog, st)
		if err != nil {
			return e, fmt.Errorf("cpu: calibrate %s/%s: %w", p.Name(), k.Name, err)
		}
		e.Cost[k.Class] = res.Cycles / float64(CalibIters*k.OpsPerIteration())
	}
	// Branches and nops ride along inside the calibration loop bodies;
	// charge branches like simple ALU ops and nops free.
	e.Cost[isa.ClassBranch] = e.Cost[isa.ClassIntALU]
	e.Cost[isa.ClassNop] = 0
	return e, nil
}

// Cycles returns the modelled cycle count for an operation mix.
func (e EffCosts) Cycles(mix *isa.Trace) float64 {
	total := 0.0
	for c, n := range mix.ByClass {
		total += float64(n) * e.Cost[c]
	}
	return total
}

// Seconds converts a mix to wall-clock at the calibrated clock.
func (e EffCosts) Seconds(mix *isa.Trace) float64 {
	return e.Cycles(mix) / (e.ClockMHz * 1e6)
}

// Mflops rates a mix: counted flops over modelled time.
func (e EffCosts) Mflops(mix *isa.Trace) float64 {
	s := e.Seconds(mix)
	if s <= 0 {
		return 0
	}
	return float64(mix.Flops) / s / 1e6
}

// Mops rates a mix the way the NAS Parallel Benchmarks report: millions
// of benchmark operations per second, where ops is the benchmark's own
// nominal operation count.
func (e EffCosts) Mops(ops float64, mix *isa.Trace) float64 {
	s := e.Seconds(mix)
	if s <= 0 {
		return 0
	}
	return ops / s / 1e6
}

// CalibrateForUncached calibrates with a workload-specific expected
// cache-miss rate on loads — large working sets (NPB Class W grids,
// treecode bodies) miss far more than the tiny calibration arena. For
// hardware models the arch's LoadMissRate is replaced; for the Crusoe
// the flat VLIW load latency is raised by the expected miss cost (its
// on-die L2 kept the penalty modest).
//
// Every call re-runs the full per-class kernel simulations; most callers
// want the memoized CalibrateFor, keeping this as the explicit bypass
// for ablations that must observe a fresh simulation.
func CalibrateForUncached(p Processor, missRate float64) (EffCosts, error) {
	switch pr := p.(type) {
	case archProcessor:
		a := *pr.a
		scale := a.MissScale
		if scale == 0 {
			scale = 1
		}
		a.LoadMissRate = missRate * scale
		if a.LoadMissRate > 1 {
			a.LoadMissRate = 1
		}
		return Calibrate(a.AsProcessor())
	case *Crusoe:
		c := pr.Clone()
		c.Timing.LoadLatency += int(missRate*10 + 0.5)
		return Calibrate(c)
	default:
		return Calibrate(p)
	}
}

// Workload-class miss rates used by the experiment drivers.
const (
	// MissRateSmall suits cache-resident kernels (the microbenchmarks).
	MissRateSmall = 0.01
	// MissRateTree suits the treecode's pointer-walking working sets.
	MissRateTree = 0.04
	// MissRateClassW suits NPB Class W grids (several MB per array).
	MissRateClassW = 0.09
)
