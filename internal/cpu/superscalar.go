// Package cpu provides timing models for the commodity processors the
// paper benchmarks against the Transmeta TM5600: trace-driven superscalar
// models (used for the gravitational microkernel, Table 1) and a coarse
// op-mix cost model calibrated from them (used for the NAS and treecode
// workloads, Tables 2–4). The TM5600 itself is modelled by the full
// CMS+VLIW simulation in internal/cms; this package wraps it behind the
// same interfaces.
package cpu

import (
	"errors"
	"fmt"

	"repro/internal/cms"
	"repro/internal/isa"
)

// UnitSpec describes one functional-unit pool of a superscalar core.
type UnitSpec struct {
	Count int // identical units in the pool
	// Latency is producer→consumer distance in cycles.
	Latency float64
	// RecipThroughput is the per-unit issue interval (1 = fully
	// pipelined; = Latency for blocking units like dividers).
	RecipThroughput float64
}

// Arch parameterizes a hardware superscalar core. The model is a one-pass
// scoreboard: with register renaming only true (RAW) dependences stall;
// in-order cores additionally issue in program order. It intentionally
// omits fetch alignment, TLBs, and replay traps — the paper's comparisons
// live at the level this captures (issue width, FP latencies, divide/sqrt
// cost, memory latency, branch penalty).
type Arch struct {
	Name     string
	ClockMHz float64

	IssueWidth int
	InOrder    bool
	// Window is the out-of-order instruction window (ROB) size; ignored
	// for in-order cores.
	Window int

	// Units per timing class group.
	IntALU UnitSpec
	IntMul UnitSpec
	Mem    UnitSpec // load/store ports; Latency applies to loads
	FPAdd  UnitSpec
	FPMul  UnitSpec
	FPDiv  UnitSpec
	FPSqrt UnitSpec

	// LoadMissRate is the expected fraction of loads missing the first-
	// level cache for the modelled working sets; LoadMissPenalty is the
	// extra latency applied (as an expected value).
	LoadMissRate    float64
	LoadMissPenalty float64

	// Branch handling: taken branches that mispredict cost
	// MispredictPenalty; PredictAccuracy is applied as an expectation.
	MispredictPenalty float64
	PredictAccuracy   float64

	// MissScale adjusts workload-supplied miss rates for this core's
	// cache hierarchy (an 8 MB L2 sees far fewer Class-W misses than a
	// 256 KB one). Zero means 1.
	MissScale float64
}

// Validate sanity-checks the parameters.
func (a *Arch) Validate() error {
	if a.ClockMHz <= 0 {
		return fmt.Errorf("cpu: %s: non-positive clock", a.Name)
	}
	if a.IssueWidth <= 0 {
		return fmt.Errorf("cpu: %s: non-positive issue width", a.Name)
	}
	if !a.InOrder && a.Window <= 0 {
		return fmt.Errorf("cpu: %s: out-of-order core needs a window", a.Name)
	}
	for _, u := range []UnitSpec{a.IntALU, a.IntMul, a.Mem, a.FPAdd, a.FPMul, a.FPDiv, a.FPSqrt} {
		if u.Count <= 0 || u.Latency <= 0 || u.RecipThroughput <= 0 {
			return fmt.Errorf("cpu: %s: unit spec must be positive: %+v", a.Name, u)
		}
	}
	if a.PredictAccuracy < 0 || a.PredictAccuracy > 1 {
		return fmt.Errorf("cpu: %s: predict accuracy out of [0,1]", a.Name)
	}
	if a.LoadMissRate < 0 || a.LoadMissRate > 1 {
		return fmt.Errorf("cpu: %s: load miss rate out of [0,1]", a.Name)
	}
	return nil
}

func (a *Arch) unitFor(c isa.Class) *UnitSpec {
	switch c {
	case isa.ClassIntALU, isa.ClassNop, isa.ClassBranch:
		return &a.IntALU
	case isa.ClassIntMul:
		return &a.IntMul
	case isa.ClassLoad, isa.ClassStore:
		return &a.Mem
	case isa.ClassFPAdd:
		return &a.FPAdd
	case isa.ClassFPMul:
		return &a.FPMul
	case isa.ClassFPDiv:
		return &a.FPDiv
	case isa.ClassFPSqrt:
		return &a.FPSqrt
	}
	return &a.IntALU
}

// RunResult reports a timed execution.
type RunResult struct {
	Cycles  float64
	Seconds float64
	Trace   isa.Trace
	// CMS carries the CMS statistics of the run when the processor was a
	// Crusoe (nil for hardware superscalar models). Cold-start runs
	// report the run's own stats; warm-start runs report the persistent
	// machine's accumulated stats. cms.Stats implements obs.Source, so a
	// driver can gather this directly into its snapshot.
	CMS *cms.Stats
}

// Mflops returns the achieved floating-point rate.
func (r RunResult) Mflops() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Trace.Flops) / r.Seconds / 1e6
}

// ErrFuel mirrors isa.ErrFuel for timed runs.
var ErrFuel = errors.New("cpu: instruction budget exhausted")

// simState is the per-run scoreboard. The front end dispatches in program
// order at IssueWidth instructions per cycle into the out-of-order window;
// execution starts when operands and a functional unit are available
// (register renaming removes WAR/WAW stalls); the ROB-full condition
// blocks dispatch when the instruction Window instructions older has not
// completed. In-order cores additionally start execution in program order.
type simState struct {
	arch *Arch
	// Completion cycle per register (RAW only; renaming removes WAR/WAW).
	readyR     [isa.NumRegs]float64
	readyF     [isa.NumRegs]float64
	readyFlags float64
	// Per-class unit schedules.
	sched map[isa.Class]*classSched
	// Front-end dispatch clock (advances 1/IssueWidth per instruction).
	dispatch float64
	// Most recent execution-start cycle (in-order issue constraint).
	lastIssue float64
	// Ring of completion times for the window (ROB) constraint.
	ring    []float64
	ringPos int
	cycles  float64
}

// Run executes the program with isa semantics while timing each dynamic
// instruction through the core model. fuel of 0 means unlimited.
func (a *Arch) Run(p isa.Program, st *isa.State, fuel uint64) (RunResult, error) {
	var res RunResult
	if err := a.Validate(); err != nil {
		return res, err
	}
	if err := p.Validate(); err != nil {
		return res, err
	}
	ss := &simState{arch: a, sched: map[isa.Class]*classSched{}}
	if !a.InOrder {
		ss.ring = make([]float64, a.Window)
	}
	executed := uint64(0)
	for !st.Halted {
		if fuel > 0 && executed >= fuel {
			return res, ErrFuel
		}
		if st.PC < 0 || st.PC >= len(p) {
			return res, fmt.Errorf("cpu: PC %d out of range", st.PC)
		}
		in := p[st.PC]
		takenBefore := res.Trace.Taken
		if err := isa.Step(p, st, &res.Trace); err != nil {
			return res, err
		}
		taken := res.Trace.Taken != takenBefore
		ss.time(in, taken)
		executed++
	}
	res.Cycles = ss.cycles
	res.Seconds = res.Cycles / (a.ClockMHz * 1e6)
	return res, nil
}

// time advances the scoreboard for one dynamic instruction and returns
// the execution-start cycle (useful for tests and debugging).
func (s *simState) time(in isa.Instr, taken bool) float64 {
	a := s.arch
	c := isa.ClassOf(in.Op)
	u := a.unitFor(c)

	// Front end: in-order dispatch at IssueWidth/cycle, blocked while the
	// window is full (the instruction Window slots older must complete
	// before this one can enter).
	d := s.dispatch
	if !a.InOrder {
		if oldest := s.ring[s.ringPos]; oldest > d {
			d = oldest
		}
	}
	s.dispatch = d + 1/float64(a.IssueWidth)

	// Execution start: dispatched, operands ready, unit free.
	t := d
	rI, rF, rFl := srcRegs(in)
	for _, r := range rI {
		if s.readyR[r] > t {
			t = s.readyR[r]
		}
	}
	for _, r := range rF {
		if s.readyF[r] > t {
			t = s.readyF[r]
		}
	}
	if rFl && s.readyFlags > t {
		t = s.readyFlags
	}
	if a.InOrder && s.lastIssue > t {
		t = s.lastIssue
	}

	// Functional-unit availability.
	cs := s.sched[c]
	if cs == nil {
		cs = newClassSched(u)
		s.sched[c] = cs
	}
	t = cs.acquire(t)
	s.lastIssue = t

	// Completion.
	lat := u.Latency
	if c == isa.ClassLoad {
		lat += a.LoadMissRate * a.LoadMissPenalty
	}
	done := t + lat
	if wI, wF := dstReg(in); wI != nil {
		s.readyR[*wI] = done
	} else if wF != nil {
		s.readyF[*wF] = done
	}
	if writesFlags(in.Op) {
		s.readyFlags = done
	}
	if !a.InOrder {
		s.ring[s.ringPos] = done
		s.ringPos = (s.ringPos + 1) % len(s.ring)
	}

	// Branch handling: a mispredicted taken branch stalls the front end
	// from the branch's resolution; applied as an expected value.
	if taken {
		stall := (1 - a.PredictAccuracy) * a.MispredictPenalty
		s.dispatch += stall
	}
	if done > s.cycles {
		s.cycles = done
	}
	if t+1 > s.cycles {
		s.cycles = t + 1
	}
	return t
}

func writesFlags(op isa.Op) bool {
	return op == isa.Cmp || op == isa.CmpI || op == isa.FCmp
}

func srcRegs(in isa.Instr) (ints, fps []uint8, flags bool) {
	switch in.Op {
	case isa.Mov, isa.AddI, isa.SubI, isa.Shl, isa.Shr, isa.CmpI, isa.CvtIF, isa.Ld, isa.FLd:
		ints = []uint8{in.Ra}
	case isa.Add, isa.Sub, isa.Mul, isa.And, isa.Or, isa.Xor, isa.Cmp:
		ints = []uint8{in.Ra, in.Rb}
	case isa.St:
		ints = []uint8{in.Ra, in.Rb}
	case isa.FSt:
		ints = []uint8{in.Ra}
		fps = []uint8{in.Rb}
	case isa.FMov, isa.FSqrt, isa.FNeg, isa.FAbs, isa.CvtFI:
		fps = []uint8{in.Ra}
	case isa.FAdd, isa.FSub, isa.FMul, isa.FDiv, isa.FCmp:
		fps = []uint8{in.Ra, in.Rb}
	case isa.Jz, isa.Jnz, isa.Jl, isa.Jle, isa.Jg, isa.Jge:
		flags = true
	}
	return
}

func dstReg(in isa.Instr) (ints, fps *uint8) {
	switch in.Op {
	case isa.MovI, isa.Mov, isa.Add, isa.AddI, isa.Sub, isa.SubI, isa.Mul,
		isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr, isa.Ld, isa.CvtFI:
		d := in.Rd
		return &d, nil
	case isa.FLd, isa.FMovI, isa.FMov, isa.FAdd, isa.FSub, isa.FMul,
		isa.FDiv, isa.FSqrt, isa.FNeg, isa.FAbs, isa.CvtIF:
		d := in.Rd
		return nil, &d
	}
	return nil, nil
}
