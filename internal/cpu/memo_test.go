package cpu

import (
	"sync"
	"testing"

	"repro/internal/kernels"
)

// TestCalibrateForMemoized asserts the second calibration of the same
// (processor, miss rate) pair hits the process-wide cache and returns
// the identical cost table.
func TestCalibrateForMemoized(t *testing.T) {
	ResetCalibCache()
	p := PentiumIII500().AsProcessor()
	first, err := CalibrateFor(p, 0.0123)
	if err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := CalibCacheCounters()
	if hits0 != 0 || misses0 != 1 {
		t.Fatalf("after first call: hits=%d misses=%d, want 0/1", hits0, misses0)
	}
	second, err := CalibrateFor(p, 0.0123)
	if err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := CalibCacheCounters()
	if hits1 != 1 || misses1 != 1 {
		t.Fatalf("after second call: hits=%d misses=%d, want 1/1", hits1, misses1)
	}
	if first != second {
		t.Fatalf("memoized costs differ: %+v vs %+v", first, second)
	}
	// A different miss rate is a different cache line.
	if _, err := CalibrateFor(p, 0.0456); err != nil {
		t.Fatal(err)
	}
	if _, misses := CalibCacheCounters(); misses != 2 {
		t.Fatalf("different miss rate should miss; misses=%d, want 2", misses)
	}
	ResetCalibCache()
}

// TestCalibrateForConcurrent hammers the memo from concurrent goroutines
// (run under -race in CI): the calibration must run exactly once and
// every caller must observe the same result.
func TestCalibrateForConcurrent(t *testing.T) {
	ResetCalibCache()
	p := AthlonMP1200().AsProcessor()
	const goroutines = 16
	results := make([]EffCosts, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = CalibrateFor(p, 0.0789)
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("goroutine %d observed different costs", i)
		}
	}
	hits, misses := CalibCacheCounters()
	if misses != 1 {
		t.Fatalf("concurrent hammer ran calibration %d times, want 1", misses)
	}
	if hits != goroutines-1 {
		t.Fatalf("hits=%d, want %d", hits, goroutines-1)
	}
	ResetCalibCache()
}

// TestCalibrateForUncachedBypassesMemo asserts the ablation bypass never
// touches the cache.
func TestCalibrateForUncachedBypassesMemo(t *testing.T) {
	ResetCalibCache()
	p := PentiumIII500().AsProcessor()
	if _, err := CalibrateForUncached(p, 0.0111); err != nil {
		t.Fatal(err)
	}
	if hits, misses := CalibCacheCounters(); hits != 0 || misses != 0 {
		t.Fatalf("bypass touched the memo: hits=%d misses=%d", hits, misses)
	}
}

// TestCrusoeWarmStart asserts cold-cache stays the default (every
// RunKernel pays translation again) while WarmStart reuses the
// translation cache, runs faster from the second kernel on, and the
// difference is visible in the CMS statistics.
func TestCrusoeWarmStart(t *testing.T) {
	k := kernels.CalibKernels()[0]
	run := func(c *Crusoe) float64 {
		prog, st, err := k.Build(2000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.RunKernel(prog, st)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}

	cold := NewTM5600()
	c1 := run(cold)
	c2 := run(cold)
	if c1 != c2 {
		t.Fatalf("cold-cache default should repeat identically: %v vs %v", c1, c2)
	}
	if st := cold.WarmStats(); st.Runs != 0 {
		t.Fatalf("cold default touched the warm machine: %+v", st)
	}

	warm := NewTM5600()
	warm.WarmStart = true
	w1 := run(warm)
	if w1 != c1 {
		t.Fatalf("first warm-start run should match a cold run: %v vs %v", w1, c1)
	}
	w2 := run(warm)
	if w2 >= w1 {
		t.Fatalf("second warm run should be cheaper: first %v, second %v", w1, w2)
	}
	st := warm.WarmStats()
	if st.Runs != 2 || st.WarmRuns != 1 {
		t.Fatalf("warm stats Runs=%d WarmRuns=%d, want 2/1", st.Runs, st.WarmRuns)
	}
	if st.Translations == 0 {
		t.Fatalf("expected translations in warm stats: %+v", st)
	}
}
