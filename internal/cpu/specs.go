package cpu

// The processor zoo. Parameters come from published microarchitecture
// references for each core (issue width, window, FP latencies,
// divide/sqrt cost, branch penalty); they drive the trace-driven model in
// superscalar.go. Absolute Mflops will not match 2001 hardware exactly —
// the goal is the paper's relative shape (see EXPERIMENTS.md).

// PentiumIII500 models the 500-MHz Intel Pentium III (Katmai): 3-wide
// out-of-order x86 with a single x87 FP pipeline and long-latency
// fdiv/fsqrt.
func PentiumIII500() *Arch {
	return &Arch{
		Name:     "500-MHz Intel Pentium III",
		ClockMHz: 500,
		// The P6 decoders sustain about two simple x86 instructions per
		// cycle on loopy FP code.
		IssueWidth: 2,
		// Modest effective window: the x87 stack discipline (fxch traffic)
		// limits how far the P6 core reorders these kernels in practice.
		Window: 28,
		IntALU: UnitSpec{Count: 2, Latency: 1, RecipThroughput: 1},
		IntMul: UnitSpec{Count: 1, Latency: 4, RecipThroughput: 1},
		Mem:    UnitSpec{Count: 1, Latency: 3, RecipThroughput: 1},
		FPAdd:  UnitSpec{Count: 1, Latency: 3, RecipThroughput: 1},
		FPMul:  UnitSpec{Count: 1, Latency: 5, RecipThroughput: 2},
		FPDiv:  UnitSpec{Count: 1, Latency: 32, RecipThroughput: 32},
		FPSqrt: UnitSpec{Count: 1, Latency: 36, RecipThroughput: 36},

		LoadMissRate:      0.02,
		LoadMissPenalty:   40,
		MispredictPenalty: 11,
		PredictAccuracy:   0.92,
	}
}

// AlphaEV56_533 models the 533-MHz Compaq/DEC Alpha 21164A: 4-wide but
// strictly in-order, two FP pipes, non-pipelined divide, and — as the
// paper notes matters for N-body codes — square root performed in
// software.
func AlphaEV56_533() *Arch {
	return &Arch{
		Name:       "533-MHz Compaq Alpha EV56",
		ClockMHz:   533,
		IssueWidth: 4,
		// The 21164 is in-order, but DEC's scheduling compiler software-
		// pipelines these kernels; a small reorder window is the standard
		// trace-model stand-in for that.
		Window: 14,
		IntALU: UnitSpec{Count: 2, Latency: 1, RecipThroughput: 1},
		IntMul: UnitSpec{Count: 1, Latency: 8, RecipThroughput: 4},
		Mem:    UnitSpec{Count: 2, Latency: 2, RecipThroughput: 1},
		FPAdd:  UnitSpec{Count: 1, Latency: 4, RecipThroughput: 1},
		FPMul:  UnitSpec{Count: 1, Latency: 4, RecipThroughput: 1},
		FPDiv:  UnitSpec{Count: 1, Latency: 31, RecipThroughput: 31},
		FPSqrt: UnitSpec{Count: 1, Latency: 70, RecipThroughput: 70}, // software

		LoadMissRate:      0.03,
		LoadMissPenalty:   30,
		MispredictPenalty: 5,
		PredictAccuracy:   0.85,
	}
}

// TM5600ArchStandIn is NOT used for Transmeta results (the real model is
// cpu.NewTM5600, the CMS simulation); it exists only for tests that need a
// hardware-style arch at the TM5600's clock.
func TM5600ArchStandIn() *Arch {
	a := PentiumIII500()
	a.Name = "633-MHz stand-in"
	a.ClockMHz = 633
	return a
}

// Power3_375 models the 375-MHz IBM Power3-II: aggressive 4-wide
// out-of-order core with two fused-multiply-add FPUs, fast hardware sqrt,
// and a strong memory system — the paper's FP heavyweight.
func Power3_375() *Arch {
	return &Arch{
		Name:     "375-MHz IBM Power3",
		ClockMHz: 375,
		// Peak dispatch is 8 instructions; 6 is the effective width on
		// FP-dense loops.
		IssueWidth: 6,
		Window:     96,
		IntALU:     UnitSpec{Count: 3, Latency: 1, RecipThroughput: 1},
		IntMul:     UnitSpec{Count: 1, Latency: 3, RecipThroughput: 1},
		// 128-byte lines and deep prefetch give very low effective load
		// latency on strided grid code.
		Mem: UnitSpec{Count: 2, Latency: 1.5, RecipThroughput: 1},
		// The two FPUs execute fused multiply–adds: each retires two of
		// the mix's flops per cycle, modelled as a half-cycle reciprocal
		// throughput.
		FPAdd:  UnitSpec{Count: 2, Latency: 3, RecipThroughput: 0.5},
		FPMul:  UnitSpec{Count: 2, Latency: 3, RecipThroughput: 0.5},
		FPDiv:  UnitSpec{Count: 1, Latency: 18, RecipThroughput: 16},
		FPSqrt: UnitSpec{Count: 1, Latency: 22, RecipThroughput: 22},

		LoadMissRate:      0.01,
		LoadMissPenalty:   35,
		MispredictPenalty: 8,
		PredictAccuracy:   0.92,
		// 8 MB of off-chip L2: Class-W arrays stay largely resident.
		MissScale: 0.3,
	}
}

// AthlonMP1200 models the 1200-MHz AMD Athlon MP: 3-wide out-of-order
// with fully pipelined separate FADD/FMUL units and a high clock.
func AthlonMP1200() *Arch {
	return &Arch{
		Name:       "1200-MHz AMD Athlon MP",
		ClockMHz:   1200,
		IssueWidth: 3,
		// As for the P6, the x87 register stack limits effective reorder
		// depth well below the K7's physical ROB.
		Window: 16,
		IntALU: UnitSpec{Count: 3, Latency: 1, RecipThroughput: 1},
		IntMul: UnitSpec{Count: 1, Latency: 4, RecipThroughput: 2},
		Mem:    UnitSpec{Count: 2, Latency: 3, RecipThroughput: 1},
		// Latencies include the x87 stack-shuffle overhead around each op.
		FPAdd:  UnitSpec{Count: 1, Latency: 6, RecipThroughput: 1},
		FPMul:  UnitSpec{Count: 1, Latency: 6, RecipThroughput: 1},
		FPDiv:  UnitSpec{Count: 1, Latency: 24, RecipThroughput: 20},
		FPSqrt: UnitSpec{Count: 1, Latency: 35, RecipThroughput: 30},

		LoadMissRate:      0.02,
		LoadMissPenalty:   80,
		MispredictPenalty: 10,
		PredictAccuracy:   0.94,
		// 256 KB L2 behind a shared MP front-side bus.
		MissScale: 1.3,
	}
}

// Pentium4_1300 models the 1.3-GHz Intel Pentium 4 (Willamette): very
// deep pipeline (large mispredict penalty), long x87 latencies. Present
// mainly for the TCO table's P4 cluster, but fully runnable.
func Pentium4_1300() *Arch {
	return &Arch{
		Name:       "1300-MHz Intel Pentium 4",
		ClockMHz:   1300,
		IssueWidth: 3,
		Window:     100,
		IntALU:     UnitSpec{Count: 2, Latency: 1, RecipThroughput: 0.5},
		IntMul:     UnitSpec{Count: 1, Latency: 14, RecipThroughput: 3},
		Mem:        UnitSpec{Count: 1, Latency: 2, RecipThroughput: 1},
		FPAdd:      UnitSpec{Count: 1, Latency: 5, RecipThroughput: 1},
		FPMul:      UnitSpec{Count: 1, Latency: 7, RecipThroughput: 2},
		FPDiv:      UnitSpec{Count: 1, Latency: 43, RecipThroughput: 43},
		FPSqrt:     UnitSpec{Count: 1, Latency: 43, RecipThroughput: 43},

		LoadMissRate:      0.03,
		LoadMissPenalty:   80,
		MispredictPenalty: 20,
		PredictAccuracy:   0.94,
	}
}

// --- Historical processors for the treecode table (Table 4). ---

// PentiumPro200 models the 200-MHz Pentium Pro of Loki, Hyglac, Naegling
// and the original ASCI Red.
func PentiumPro200() *Arch {
	a := PentiumIII500()
	a.Name = "200-MHz Intel Pentium Pro"
	a.ClockMHz = 200
	a.LoadMissPenalty = 25
	a.PredictAccuracy = 0.90
	// The PPro's on-package full-speed 256 KB L2 was ahead of its time.
	a.MissScale = 0.7
	a.FPMul.RecipThroughput = 1.5
	return a
}

// PentiumII333 models the 333-MHz Pentium II Xeon of the upgraded
// ASCI Red.
func PentiumII333() *Arch {
	a := PentiumIII500()
	a.Name = "333-MHz Intel Pentium II"
	a.ClockMHz = 333
	return a
}

// R10000_250 models the 250-MHz MIPS R10000 of the SGI Origin 2000.
func R10000_250() *Arch {
	return &Arch{
		Name:     "250-MHz MIPS R10000",
		ClockMHz: 250,
		// Four-wide fetch feeding five execution pipelines; 5 is the
		// effective width on FP-dense loops.
		IssueWidth: 5,
		Window:     48,
		IntALU:     UnitSpec{Count: 2, Latency: 1, RecipThroughput: 1},
		IntMul:     UnitSpec{Count: 1, Latency: 6, RecipThroughput: 6},
		Mem:        UnitSpec{Count: 1, Latency: 1.5, RecipThroughput: 1},
		// MIPS IV fused multiply–add: two mix flops per unit-cycle.
		FPAdd: UnitSpec{Count: 1, Latency: 2, RecipThroughput: 0.5},
		FPMul: UnitSpec{Count: 1, Latency: 2, RecipThroughput: 0.5},
		FPDiv: UnitSpec{Count: 1, Latency: 19, RecipThroughput: 19},
		// MIPS IV's rsqrt estimate + one Newton step, software-pipelined.
		FPSqrt: UnitSpec{Count: 1, Latency: 30, RecipThroughput: 12},

		LoadMissRate:      0.015,
		LoadMissPenalty:   30,
		MispredictPenalty: 8,
		PredictAccuracy:   0.90,
		// 4 MB of board L2 per processor.
		MissScale: 0.3,
	}
}

// Power2_66 models the 66-MHz Power2 (P2SC) of the NAS IBM SP-2, with its
// two FMA pipes.
func Power2_66() *Arch {
	return &Arch{
		Name:       "66-MHz IBM Power2",
		ClockMHz:   66,
		IssueWidth: 4,
		Window:     16,
		IntALU:     UnitSpec{Count: 2, Latency: 1, RecipThroughput: 1},
		IntMul:     UnitSpec{Count: 1, Latency: 5, RecipThroughput: 2},
		Mem:        UnitSpec{Count: 2, Latency: 2, RecipThroughput: 1},
		FPAdd:      UnitSpec{Count: 2, Latency: 2, RecipThroughput: 1},
		FPMul:      UnitSpec{Count: 2, Latency: 2, RecipThroughput: 1},
		FPDiv:      UnitSpec{Count: 1, Latency: 17, RecipThroughput: 17},
		FPSqrt:     UnitSpec{Count: 1, Latency: 25, RecipThroughput: 25},

		LoadMissRate:      0.01,
		LoadMissPenalty:   20,
		MispredictPenalty: 4,
		PredictAccuracy:   0.88,
	}
}

// Alpha21064_150 models the 150-MHz Alpha 21064 of the JPL Cray T3D:
// 2-wide in-order, software square root.
func Alpha21064_150() *Arch {
	return &Arch{
		Name:       "150-MHz DEC Alpha 21064",
		ClockMHz:   150,
		IssueWidth: 2,
		InOrder:    true,
		IntALU:     UnitSpec{Count: 1, Latency: 1, RecipThroughput: 1},
		IntMul:     UnitSpec{Count: 1, Latency: 12, RecipThroughput: 8},
		Mem:        UnitSpec{Count: 1, Latency: 3, RecipThroughput: 1},
		FPAdd:      UnitSpec{Count: 1, Latency: 6, RecipThroughput: 1},
		FPMul:      UnitSpec{Count: 1, Latency: 6, RecipThroughput: 1},
		FPDiv:      UnitSpec{Count: 1, Latency: 34, RecipThroughput: 34},
		FPSqrt:     UnitSpec{Count: 1, Latency: 75, RecipThroughput: 75}, // software

		LoadMissRate:      0.03,
		LoadMissPenalty:   25,
		MispredictPenalty: 4,
		PredictAccuracy:   0.80,
	}
}

// SuperSPARC40 models the 40-MHz SuperSPARC node of the NRL TMC CM-5E
// (scalar units only; the vector units the treecode did not use).
func SuperSPARC40() *Arch {
	return &Arch{
		Name:       "40-MHz SuperSPARC (CM-5E)",
		ClockMHz:   40,
		IssueWidth: 3,
		InOrder:    true,
		IntALU:     UnitSpec{Count: 2, Latency: 1, RecipThroughput: 1},
		IntMul:     UnitSpec{Count: 1, Latency: 5, RecipThroughput: 3},
		Mem:        UnitSpec{Count: 1, Latency: 2, RecipThroughput: 1},
		FPAdd:      UnitSpec{Count: 1, Latency: 3, RecipThroughput: 1},
		FPMul:      UnitSpec{Count: 1, Latency: 3, RecipThroughput: 1},
		FPDiv:      UnitSpec{Count: 1, Latency: 9, RecipThroughput: 7},
		FPSqrt:     UnitSpec{Count: 1, Latency: 12, RecipThroughput: 10},

		LoadMissRate:      0.02,
		LoadMissPenalty:   15,
		MispredictPenalty: 3,
		PredictAccuracy:   0.80,
	}
}

// EvaluationCPUs returns the five processors of Table 1 in the paper's
// row order.
func EvaluationCPUs() []Processor {
	return []Processor{
		PentiumIII500().AsProcessor(),
		AlphaEV56_533().AsProcessor(),
		NewTM5600(),
		Power3_375().AsProcessor(),
		AthlonMP1200().AsProcessor(),
	}
}

// NASCPUs returns the four processors of Table 3 in the paper's column
// order (Athlon MP, Pentium 3, TM5600, Power3).
func NASCPUs() []Processor {
	return []Processor{
		AthlonMP1200().AsProcessor(),
		PentiumIII500().AsProcessor(),
		NewTM5600(),
		Power3_375().AsProcessor(),
	}
}
