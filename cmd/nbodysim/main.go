// Command nbodysim runs gravitational N-body simulations with the
// treecode library: serial or on a simulated Bladed Beowulf, direct or
// tree-accelerated, with energy diagnostics and density renderings.
//
// Usage:
//
//	nbodysim -n 20000 -steps 20 -theta 0.7
//	nbodysim -n 2000 -direct -steps 10
//	nbodysim -n 30000 -ranks 24 -render out.pgm
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/cpu"
	"repro/internal/mpi"
	"repro/internal/nbody"
	"repro/internal/netsim"
	"repro/internal/par"
	"repro/internal/treecode"
)

func main() {
	n := flag.Int("n", 20000, "particle count")
	steps := flag.Int("steps", 10, "leapfrog steps")
	dt := flag.Float64("dt", 0.005, "time step")
	theta := flag.Float64("theta", 0.7, "multipole acceptance parameter")
	direct := flag.Bool("direct", false, "use O(N²) direct summation instead of the treecode")
	quad := flag.Bool("quadrupole", false, "use quadrupole moments")
	ranks := flag.Int("ranks", 0, "simulate a parallel run on this many TM5600 blades (0 = serial)")
	procs := flag.Int("procs", runtime.GOMAXPROCS(0),
		"host worker-pool width for tree build and force loops (independent of the simulated -ranks)")
	render := flag.String("render", "", "write a PGM density rendering to this file")
	ascii := flag.Bool("ascii", false, "print an ASCII density rendering")
	flag.Parse()
	par.SetWorkers(*procs)

	s := nbody.NewPlummer(*n, 1, 2001)
	k0, p0 := 0.0, 0.0
	if *n <= 20000 {
		k0, p0 = s.Energy()
	}

	var forcer nbody.Forcer
	switch {
	case *direct:
		forcer = nbody.DirectForcer{}
	case *ranks > 0:
		costs, err := cpu.CalibrateFor(cpu.NewTM5600(), cpu.MissRateTree)
		check(err)
		cm := treecode.CostModel{
			SecondsPerInteraction: costs.Seconds(treecode.InteractionMix()),
			SecondsPerBuildSource: costs.Seconds(treecode.BuildMix()),
		}
		forcer = &parallelForcer{ranks: *ranks, cfg: treecode.ParallelConfig{
			Theta: *theta, Quadrupole: *quad, Eps: s.Eps, Cost: cm,
		}}
	default:
		forcer = &treecode.Forcer{Theta: *theta, Quadrupole: *quad}
	}

	check(s.Leapfrog(forcer, *dt, *steps))
	fmt.Printf("%d particles, %d steps: %d interactions, %.3g flops (treecode convention)\n",
		*n, *steps, s.Interactions, float64(s.Flops()))
	if pf, ok := forcer.(*parallelForcer); ok {
		fmt.Printf("simulated MetaBlade time: %.3f s over %d blades → %.2f Gflops sustained\n",
			pf.simTime, *ranks, float64(s.Flops())/pf.simTime/1e9)
	}
	if k0 != 0 || p0 != 0 {
		k1, p1 := s.Energy()
		fmt.Printf("energy drift: |ΔE/E| = %.2e\n", abs((k1+p1-k0-p0)/(k0+p0)))
	}

	if *render != "" || *ascii {
		img, err := nbody.RenderAuto(s, 72, 36)
		check(err)
		if *ascii {
			fmt.Println(img.ASCII())
		}
		if *render != "" {
			f, err := os.Create(*render)
			check(err)
			check(img.WritePGM(f))
			check(f.Close())
			fmt.Println("wrote", *render)
		}
	}
}

// parallelForcer adapts treecode.ParallelForces to nbody.Forcer,
// accumulating simulated cluster time across steps.
type parallelForcer struct {
	ranks   int
	cfg     treecode.ParallelConfig
	simTime float64
}

func (p *parallelForcer) Forces(s *nbody.System) error {
	w, err := mpi.NewWorld(p.ranks, netsim.FastEthernet())
	if err != nil {
		return err
	}
	res, err := treecode.ParallelForces(w, s, p.cfg)
	if err != nil {
		return err
	}
	p.simTime += res.SimTime
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbodysim:", err)
		os.Exit(1)
	}
}
