// Command nbodysim runs gravitational N-body simulations with the
// treecode library: serial or on a simulated Bladed Beowulf, direct or
// tree-accelerated, with energy diagnostics and density renderings.
//
// Usage:
//
//	nbodysim -n 20000 -steps 20 -theta 0.7
//	nbodysim -n 2000 -direct -steps 10
//	nbodysim -n 20000 -rungs 4 -steps 20
//	nbodysim -n 30000 -ranks 24 -render out.pgm
//	nbodysim -n 10000 -ranks 8 -obs-json obs.json -trace run.trace
//
// The force engine comes from the shared -engine/-error-budget driver
// flags (default: the dual-tree engine); -rungs enables hierarchical
// block timesteps with DT/2^rungs as the finest step.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mpi"
	"repro/internal/nbody"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/treecode"
)

func main() {
	d := core.NewDriver("nbodysim")
	n := flag.Int("n", 20000, "particle count")
	steps := flag.Int("steps", 10, "leapfrog steps")
	dt := flag.Float64("dt", 0.005, "time step")
	theta := flag.Float64("theta", 0.7, "multipole acceptance parameter")
	direct := flag.Bool("direct", false, "use O(N²) direct summation instead of the treecode")
	quad := flag.Bool("quadrupole", false, "use quadrupole moments")
	ranks := flag.Int("ranks", 0, "simulate a parallel run on this many TM5600 blades (0 = serial)")
	render := flag.String("render", "", "write a PGM density rendering to this file")
	ascii := flag.Bool("ascii", false, "print an ASCII density rendering")
	rungs := flag.Int("rungs", 0, "hierarchical block-timestep rungs (0 = uniform leapfrog; finest step is dt/2^rungs)")
	eta := flag.Float64("eta", 0, "block-timestep accuracy parameter (0 = default)")
	flag.Parse()
	d.Check(d.Setup())
	snap := d.Run.Snap

	s := nbody.NewPlummer(*n, 1, 2001)
	k0, p0 := 0.0, 0.0
	if *n <= 20000 {
		k0, p0 = s.Energy()
	}

	var forcer nbody.Forcer
	switch {
	case *direct:
		forcer = nbody.DirectForcer{}
	case *ranks > 0:
		costs, err := cpu.CalibrateFor(cpu.NewTM5600(), cpu.MissRateTree)
		d.Check(err)
		cm := treecode.CostModel{
			SecondsPerInteraction: costs.Seconds(treecode.InteractionMix()),
			SecondsPerBuildSource: costs.Seconds(treecode.BuildMix()),
		}
		forcer = &parallelForcer{ranks: *ranks, run: d.Run, cfg: treecode.ParallelConfig{
			Theta: *theta, Quadrupole: *quad, Eps: s.Eps, Cost: cm,
			Engine: d.Engine,
		}}
	default:
		forcer = &treecode.Forcer{Theta: *theta, Quadrupole: *quad, Tracer: d.Run.Tracer,
			Engine: d.Engine}
	}

	var stepper nbody.BlockStepper
	if *rungs > 0 {
		err := stepper.Run(s, forcer, nbody.BlockConfig{DT: *dt, MaxRung: *rungs, Eta: *eta}, *steps)
		d.Check(err)
		st := stepper.Stats
		d.Textf("block timesteps: %d substeps, %d force updates (%d saved vs uniform), max rung %d, histogram %v\n",
			st.Substeps, st.Updates, st.Saved, st.MaxRungUsed, stepper.Histogram())
		snap.SetGauge("nbodysim.rung.max_used", "", "highest block-timestep rung occupied", float64(st.MaxRungUsed))
		snap.SetGauge("nbodysim.rung.updates", "", "per-particle force updates performed", float64(st.Updates))
		snap.SetGauge("nbodysim.rung.saved", "", "force updates avoided vs uniform finest-dt stepping", float64(st.Saved))
	} else {
		d.Check(s.Leapfrog(forcer, *dt, *steps))
	}
	d.Textf("%d particles, %d steps: %d interactions, %.3g flops (treecode convention)\n",
		*n, *steps, s.Interactions, float64(s.Flops()))
	snap.SetGauge("nbodysim.particles", "", "particle count", float64(*n))
	snap.SetGauge("nbodysim.steps", "", "leapfrog steps", float64(*steps))
	switch f := forcer.(type) {
	case *treecode.Forcer:
		snap.Gather(f)
	case *parallelForcer:
		d.Textf("simulated MetaBlade time: %.3f s over %d blades → %.2f Gflops sustained\n",
			f.simTime, *ranks, float64(s.Flops())/f.simTime/1e9)
		snap.SetGauge("nbodysim.sim_time", "s", "accumulated simulated cluster time", f.simTime)
	}
	if k0 != 0 || p0 != 0 {
		k1, p1 := s.Energy()
		drift := abs((k1 + p1 - k0 - p0) / (k0 + p0))
		d.Textf("energy drift: |ΔE/E| = %.2e\n", drift)
		snap.SetGauge("nbodysim.energy_drift", "", "relative energy drift over the run", drift)
	}

	if *render != "" || *ascii {
		img, err := nbody.RenderAuto(s, 72, 36)
		d.Check(err)
		if *ascii {
			d.Textf("%s\n", img.ASCII())
		}
		if *render != "" {
			f, err := os.Create(*render)
			d.Check(err)
			d.Check(img.WritePGM(f))
			d.Check(f.Close())
			d.Textf("wrote %s\n", *render)
		}
	}
	d.Check(d.Finish())
}

// parallelForcer adapts treecode.ParallelForces to nbody.Forcer,
// accumulating simulated cluster time across steps and gathering each
// step's world and result into the run's snapshot.
type parallelForcer struct {
	ranks   int
	cfg     treecode.ParallelConfig
	run     *core.Run
	simTime float64
	step    int
}

func (p *parallelForcer) Forces(s *nbody.System) error {
	w, err := mpi.NewWorld(p.ranks, netsim.FastEthernet())
	if err != nil {
		return err
	}
	w.Tracer = p.run.Tracer
	sp := p.run.Tracer.Begin(obs.PidHost, 0, "nbodysim", fmt.Sprintf("step%d", p.step))
	res, err := treecode.ParallelForces(w, s, p.cfg)
	if err != nil {
		return err
	}
	sp.End(map[string]any{"sim_time": res.SimTime})
	p.run.Snap.Gather(w, res)
	p.simTime += res.SimTime
	p.step++
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
