// Command nbodysim runs gravitational N-body simulations with the
// treecode library: serial or on a simulated Bladed Beowulf, direct or
// tree-accelerated, with energy diagnostics and density renderings.
//
// Usage:
//
//	nbodysim -n 20000 -steps 20 -theta 0.7
//	nbodysim -n 2000 -direct -steps 10
//	nbodysim -n 20000 -ic twocluster -steps 20
//	nbodysim -n 20000 -rungs 4 -steps 20
//	nbodysim -n 30000 -ranks 24 -render out.pgm
//	nbodysim -n 10000 -ranks 8 -obs-json obs.json -trace run.trace
//
// The force engine comes from the shared -engine/-error-budget driver
// flags (default: the dual-tree engine); -rungs enables hierarchical
// block timesteps with DT/2^rungs as the finest step.
//
// The flags are a thin parse layer over core.NBodySpec — the same
// experiment spec the gridd gateway accepts as JSON; the rendering
// flags (-render, -ascii) stay host-side, fed by the run's system.
package main

import (
	"flag"
	"os"

	"repro/internal/core"
	"repro/internal/nbody"
)

func main() {
	d := core.NewDriver("nbodysim")
	n := flag.Int("n", 20000, "particle count")
	steps := flag.Int("steps", 10, "leapfrog steps")
	dt := flag.Float64("dt", 0.005, "time step")
	theta := flag.Float64("theta", 0.7, "multipole acceptance parameter")
	direct := flag.Bool("direct", false, "use O(N²) direct summation instead of the treecode")
	quad := flag.Bool("quadrupole", false, "use quadrupole moments")
	ranks := flag.Int("ranks", 0, "simulate a parallel run on this many TM5600 blades (0 = serial)")
	render := flag.String("render", "", "write a PGM density rendering to this file")
	ascii := flag.Bool("ascii", false, "print an ASCII density rendering")
	rungs := flag.Int("rungs", 0, "hierarchical block-timestep rungs (0 = uniform leapfrog; finest step is dt/2^rungs)")
	eta := flag.Float64("eta", 0, "block-timestep accuracy parameter (0 = default)")
	ic := flag.String("ic", "plummer", "initial conditions: plummer, colddisk, or twocluster")
	flag.Parse()
	d.Check(d.Setup())

	res, err := d.RunSpec(&core.NBodySpec{
		N:          *n,
		Steps:      *steps,
		DT:         *dt,
		Theta:      *theta,
		Direct:     *direct,
		Quadrupole: *quad,
		Ranks:      *ranks,
		Rungs:      *rungs,
		Eta:        *eta,
		IC:         *ic,
		EngineSpec: d.SpecEngine(),
	})
	d.Check(err)

	if *render != "" || *ascii {
		s := res.Extra.(*nbody.System)
		img, err := nbody.RenderAuto(s, 72, 36)
		d.Check(err)
		if *ascii {
			d.Textf("%s\n", img.ASCII())
		}
		if *render != "" {
			f, err := os.Create(*render)
			d.Check(err)
			d.Check(img.WritePGM(f))
			d.Check(f.Close())
			d.Textf("wrote %s\n", *render)
		}
	}
	d.Check(d.Finish())
}
