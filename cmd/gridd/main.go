// Command gridd is the simulation-as-a-service gateway: a long-running
// HTTP daemon that accepts experiment specs as JSON, schedules them on
// a bounded worker pool with per-tenant fairness, and streams results
// back — serving repeated submissions from a cache keyed by the spec's
// canonical hash (the simulator is deterministic, so identical configs
// are free).
//
// Usage:
//
//	gridd                          # listen on :8440
//	gridd -addr :9000 -workers 8
//	gridd -log-format json -log-level debug
//
// API (all JSON):
//
//	POST /v1/experiments           submit a spec envelope; waits for the
//	                               result (202 + id past -request-timeout)
//	POST /v1/experiments?async=1   202 {id} immediately
//	GET  /v1/experiments/{id}      poll a submission (ids are random;
//	                               only the submitting tenant may poll,
//	                               and finished jobs expire past
//	                               -job-retention)
//	GET  /v1/kinds                 registered kinds + canonical defaults
//	GET  /v1/stats                 the gateway's serve.* obs snapshot
//	GET  /healthz                  liveness
//
// Tenancy is by the X-Tenant header (default "anon"); each tenant gets
// its own FIFO queue, dispatched round-robin, bounded by -queue-depth.
// SIGINT/SIGTERM drain in-flight jobs before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8440", "listen address")
	workers := flag.Int("workers", 2, "concurrent experiment executions")
	depth := flag.Int("queue-depth", 16, "queued jobs allowed per tenant")
	cacheN := flag.Int("cache", 256, "result-cache entries")
	retention := flag.Int("job-retention", 512, "finished jobs kept pollable by id")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "synchronous submit wait before degrading to 202 + poll")
	drain := flag.Duration("drain", 2*time.Minute, "shutdown grace for in-flight jobs")
	logLevel := flag.String("log-level", "info", "log level (debug, info, warn, error)")
	logFormat := flag.String("log-format", "text", "log format (text, json)")
	flag.Parse()

	log, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridd:", err)
		os.Exit(2)
	}

	gw := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *depth,
		CacheEntries:   *cacheN,
		JobRetention:   *retention,
		RequestTimeout: *reqTimeout,
		Logger:         log,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: gw.Handler(),
		// The write timeout must outlast a synchronous submit's wait; the
		// read side only carries small JSON bodies.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *reqTimeout + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Info("gridd listening", "addr", *addr, "workers", *workers, "queue_depth", *depth, "cache", *cacheN)

	select {
	case <-ctx.Done():
		log.Info("shutting down", "drain", drain.String())
	case err := <-errc:
		log.Error("server failed", "err", err)
		os.Exit(1)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Warn("http shutdown", "err", err)
	}
	if err := gw.Close(shutdownCtx); err != nil {
		log.Error("drain failed", "err", err)
		os.Exit(1)
	}
	log.Info("gridd stopped")
}

func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
}
