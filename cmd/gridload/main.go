// Command gridload drives the experiment gateway with a replayed
// workload and reports its service metrics: requests per second, cache
// hit rate, and p50/p99 latency. By default it load-tests an in-process
// gateway; -target points it at a running gridd over HTTP.
//
// Usage:
//
//	gridload                               # in-process load test
//	gridload -merge BENCH_pr10.json -guard # merge entries + regression gate
//	gridload -target http://:8440 -smoke   # CI smoke: submit, resubmit,
//	                                       # assert the hit is bit-identical
//
// The workload is a cold round of distinct specs followed by -rounds
// hot rounds of the same specs from -clients concurrent clients across
// -tenants tenants. Every hot response must be a cache hit whose result
// document is byte-identical to the cold run's — the gateway's core
// promise — and -guard fails the run otherwise, alongside latency and
// throughput floors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/serve"
)

func main() {
	target := flag.String("target", "", "gateway base `URL`; empty runs an in-process gateway")
	specs := flag.Int("specs", 8, "distinct specs in the workload")
	rounds := flag.Int("rounds", 6, "hot rounds over all specs")
	clients := flag.Int("clients", 8, "concurrent client workers")
	tenants := flag.Int("tenants", 3, "tenants to spread submissions across")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "in-process gateway worker pool size")
	merge := flag.String("merge", "", "merge gateway entries into the report at this `path` (created if missing)")
	guard := flag.Bool("guard", false, "fail on service-level regressions (hit rate, bit-identity, latency, throughput)")
	smoke := flag.Bool("smoke", false, "smoke mode: submit one spec twice, assert a bit-identical cache hit")
	smokeKind := flag.String("smoke-kind", "table1", "experiment kind the smoke submits")
	wait := flag.Duration("wait", 10*time.Second, "how long to wait for -target to become healthy")
	flag.Parse()

	base := *target
	if base == "" {
		gw := serve.New(serve.Config{
			Workers: *workers,
			// Deep queues: the load test intentionally floods.
			QueueDepth: *specs * (*rounds) * 2,
			Logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		ts := httptest.NewServer(gw.Handler())
		defer ts.Close()
		defer gw.Close(context.Background())
		base = ts.URL
	} else {
		check(waitReady(base, *wait))
	}
	base = strings.TrimRight(base, "/")

	if *smoke {
		check(runSmoke(base, *smokeKind))
		return
	}

	res, err := runLoad(base, *specs, *rounds, *clients, *tenants)
	check(err)
	entries := res.entries()
	for _, e := range entries {
		fmt.Printf("%-24s %14.0f ns/op", e.Name, e.NsPerOp)
		for _, k := range []string{"requests_per_sec", "hit_rate", "p50_ns", "p99_ns", "requests"} {
			if v, ok := e.Metrics[k]; ok {
				fmt.Printf("  %s=%.6g", k, v)
			}
		}
		fmt.Println()
	}

	if *merge != "" {
		rep, err := benchfmt.Read(*merge)
		if os.IsNotExist(err) {
			rep = &benchfmt.Report{
				Schema:     benchfmt.Schema,
				GoVersion:  runtime.Version(),
				GOMAXPROCS: runtime.GOMAXPROCS(0),
			}
			err = nil
		}
		check(err)
		rep.Merge(entries)
		check(rep.Write(*merge))
		fmt.Printf("merged %d gateway entries into %s\n", len(entries), *merge)
	}
	if *guard {
		check(res.guard())
		fmt.Println("guard: gateway service checks passed")
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridload:", err)
		os.Exit(1)
	}
}

// envelope mirrors serve.Envelope for decoding responses.
type envelope struct {
	Status   string          `json:"status"`
	Cached   bool            `json:"cached"`
	SpecHash string          `json:"spec_hash"`
	Error    string          `json:"error"`
	Doc      json.RawMessage `json:"doc"`
}

func submit(base, tenant, body string) (time.Duration, *envelope, error) {
	req, err := http.NewRequest("POST", base+"/v1/experiments", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	t0 := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	lat := time.Since(t0)
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return lat, nil, fmt.Errorf("decode response: %w", err)
	}
	if resp.StatusCode != http.StatusOK || env.Status != "done" {
		return lat, &env, fmt.Errorf("status %d %q: %s", resp.StatusCode, env.Status, env.Error)
	}
	return lat, &env, nil
}

func waitReady(base string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := http.Get(strings.TrimRight(base, "/") + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("gateway at %s not healthy after %s: %v", base, patience, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runSmoke is the CI path: one spec, submitted twice; the resubmission
// must be a cache hit returning the first run's document byte for byte.
func runSmoke(base, kind string) error {
	body := fmt.Sprintf(`{"api":"repro/spec/v1","kind":%q}`, kind)
	_, first, err := submit(base, "smoke", body)
	if err != nil {
		return fmt.Errorf("first submit: %w", err)
	}
	_, second, err := submit(base, "smoke", body)
	if err != nil {
		return fmt.Errorf("resubmit: %w", err)
	}
	if !second.Cached {
		return fmt.Errorf("resubmit of %q was not served from cache", kind)
	}
	if !bytes.Equal(first.Doc, second.Doc) {
		return fmt.Errorf("cached %q document differs from the first run", kind)
	}
	fmt.Printf("smoke ok: %s %s cached bit-identical (%d bytes)\n", kind, first.SpecHash[:12], len(first.Doc))
	return nil
}

// loadResult aggregates one load run.
type loadResult struct {
	specs, hot   int
	coldMean     time.Duration
	hotLat       []time.Duration // sorted
	hotWall      time.Duration
	cachedHits   int
	identityErrs int
}

// workloadSpec builds the i-th distinct spec body: TCO queries are pure
// arithmetic, so the load test measures the gateway, not the simulator.
func workloadSpec(i int) string {
	return fmt.Sprintf(`{"api":"repro/spec/v1","kind":"tco","spec":{"nodes":%d}}`, 10+i)
}

func runLoad(base string, specs, rounds, clients, tenants int) (*loadResult, error) {
	res := &loadResult{specs: specs}

	// Cold round, sequential: every spec executes once and lands in the
	// cache; its doc is the bit-identity reference for the hot phase.
	docs := make([][]byte, specs)
	var coldSum time.Duration
	for i := 0; i < specs; i++ {
		lat, env, err := submit(base, "t0", workloadSpec(i))
		if err != nil {
			return nil, fmt.Errorf("cold submit %d: %w", i, err)
		}
		coldSum += lat
		docs[i] = env.Doc
	}
	res.coldMean = coldSum / time.Duration(specs)

	// Hot phase: every submission is a replay, driven concurrently.
	type shot struct {
		lat      time.Duration
		cached   bool
		identity bool
	}
	total := specs * rounds
	res.hot = total
	work := make(chan int, total)
	for r := 0; r < rounds; r++ {
		for i := 0; i < specs; i++ {
			work <- i
		}
	}
	close(work)
	shots := make([]shot, 0, total)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", c%tenants)
			for i := range work {
				lat, env, err := submit(base, tenant, workloadSpec(i))
				if err != nil {
					errc <- fmt.Errorf("hot submit %d: %w", i, err)
					return
				}
				mu.Lock()
				shots = append(shots, shot{lat, env.Cached, bytes.Equal(env.Doc, docs[i])})
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	res.hotWall = time.Since(t0)
	close(errc)
	for err := range errc {
		return nil, err
	}
	for _, s := range shots {
		res.hotLat = append(res.hotLat, s.lat)
		if s.cached {
			res.cachedHits++
		}
		if !s.identity {
			res.identityErrs++
		}
	}
	sort.Slice(res.hotLat, func(i, j int) bool { return res.hotLat[i] < res.hotLat[j] })
	return res, nil
}

func (r *loadResult) percentile(p float64) time.Duration {
	if len(r.hotLat) == 0 {
		return 0
	}
	idx := int(p * float64(len(r.hotLat)-1))
	return r.hotLat[idx]
}

func (r *loadResult) hitRate() float64 {
	return float64(r.cachedHits) / float64(r.hot)
}

func (r *loadResult) reqPerSec() float64 {
	return float64(r.hot) / r.hotWall.Seconds()
}

func (r *loadResult) entries() []benchfmt.Entry {
	var hotSum time.Duration
	for _, l := range r.hotLat {
		hotSum += l
	}
	hotMean := float64(hotSum.Nanoseconds()) / float64(len(r.hotLat))
	return []benchfmt.Entry{
		{
			Name:    "serve/submit/cold",
			NsPerOp: float64(r.coldMean.Nanoseconds()),
			Metrics: map[string]float64{"requests": float64(r.specs)},
		},
		{
			Name:    "serve/submit/cached",
			NsPerOp: hotMean,
			Metrics: map[string]float64{
				"requests":         float64(r.hot),
				"requests_per_sec": r.reqPerSec(),
				"hit_rate":         r.hitRate(),
				"p50_ns":           float64(r.percentile(0.50).Nanoseconds()),
				"p99_ns":           float64(r.percentile(0.99).Nanoseconds()),
			},
		},
	}
}

// guard applies the service-level checks. Hit rate and bit-identity
// are exact — the cold round populated the cache, so every hot
// submission must hit it and replay the same bytes. The latency and
// throughput floors are deliberately loose: a cached submit is a map
// lookup plus JSON copy, so even a loaded CI box clears them by orders
// of magnitude.
func (r *loadResult) guard() error {
	if r.cachedHits != r.hot {
		return fmt.Errorf("guard: %d of %d hot submissions missed the cache (hit rate %.3f, want 1.0)",
			r.hot-r.cachedHits, r.hot, r.hitRate())
	}
	if r.identityErrs > 0 {
		return fmt.Errorf("guard: %d of %d cached documents were not bit-identical to the first run",
			r.identityErrs, r.hot)
	}
	if p99 := r.percentile(0.99); p99 > 250*time.Millisecond {
		return fmt.Errorf("guard: cached submit p99 %s, want <= 250ms", p99)
	}
	if rps := r.reqPerSec(); rps < 20 {
		return fmt.Errorf("guard: %.1f cached requests/sec, want >= 20", rps)
	}
	return nil
}
