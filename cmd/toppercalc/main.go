// Command toppercalc evaluates the paper's cost model — TCO and ToPPeR —
// for a user-described cluster, so the §4 analysis can be repeated with
// your own numbers.
//
// Usage:
//
//	toppercalc -nodes 24 -watts 85 -acquisition 17000 -gflops 2.8
//	toppercalc -blade -nodes 240 -watts 15 -acquisition 260000 -gflops 36
//	toppercalc -blade -format json
package main

import (
	"flag"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/tco"
)

func main() {
	d := core.NewDriver("toppercalc")
	nodes := flag.Int("nodes", 24, "compute node count")
	watts := flag.Float64("watts", 85, "per-node power draw under load (W)")
	acq := flag.Float64("acquisition", 17000, "acquisition cost (hardware + software, $)")
	gflops := flag.Float64("gflops", 2.8, "delivered performance (Gflops)")
	blade := flag.Bool("blade", false, "bladed packaging (RLX-style chassis, no active cooling, managed)")
	ambient := flag.Float64("ambient", 24, "machine-room ambient temperature (°C)")
	years := flag.Float64("years", 4, "operational lifetime (years)")
	kwh := flag.Float64("kwh", 0.10, "electricity rate ($/kWh)")
	space := flag.Float64("space", 100, "floor-space lease rate ($/ft²/year)")
	cpuHour := flag.Float64("cpuhour", 5, "downtime charge ($/CPU-hour)")
	flag.Parse()
	d.Check(d.Setup())
	snap := d.Run.Snap

	node := cluster.NodeSpec{
		Name:                  "custom node",
		CPUModel:              "custom",
		WattsLoad:             *watts,
		RequiresActiveCooling: !*blade,
	}
	pack := cluster.TraditionalPackaging()
	admin := tco.TraditionalAdmin()
	outages := tco.TraditionalOutages()
	if *blade {
		pack = cluster.BladePackaging()
		admin = tco.BladeAdmin()
		outages = tco.BladeOutages()
	}
	cl, err := cluster.New("custom", node, pack, *nodes, *ambient)
	d.Check(err)

	rates := tco.Rates{
		AdminPerHour:       100,
		ElectricityPerKWh:  *kwh,
		SpacePerSqFtYear:   *space,
		DowntimePerCPUHour: *cpuHour,
		Years:              *years,
	}
	b, err := tco.Compute(tco.Config{
		Name:           "custom",
		AcquisitionUSD: *acq,
		Cluster:        cl,
		Admin:          admin,
		Outages:        outages,
	}, rates)
	d.Check(err)

	rel := cluster.DefaultReliability()
	d.Textf("Cluster: %d nodes, %.1f kW compute + %.1f kW cooling, %.0f ft², %s\n",
		*nodes, cl.ComputePowerKW(), cl.CoolingPowerKW(), cl.FootprintSqFt(), pack.Name)
	d.Textf("Reliability model: %.1f expected failures/year, availability %.4f\n\n",
		cl.ExpectedFailuresPerYear(rel), cl.Availability(rel))

	// The cost breakdown lives in the snapshot; the text rendering is the
	// snapshot's own table over the topper.* prefix.
	snap.SetGauge("topper.cost.acquisition", "$", "acquisition cost", b.Acquisition)
	snap.SetGauge("topper.cost.sysadmin", "$", "system administration over the lifetime", b.SysAdmin)
	snap.SetGauge("topper.cost.power_cooling", "$", "power and cooling over the lifetime", b.PowerCooling)
	snap.SetGauge("topper.cost.space", "$", "floor space over the lifetime", b.Space)
	snap.SetGauge("topper.cost.downtime", "$", "downtime charges over the lifetime", b.Downtime)
	snap.SetGauge("topper.cost.tco", "$", "total cost of ownership", b.TCO())
	snap.SetGauge("topper.priceperf", "$/Mflops", "acquisition price/performance", tco.PricePerf(b.Acquisition, *gflops))
	snap.SetGauge("topper.topper", "$/Mflops", "total price-performance ratio", tco.ToPPeR(b.TCO(), *gflops))
	snap.SetGauge("topper.perf_space", "Mflop/ft2", "performance per floor space", tco.PerfPerSpace(*gflops, cl.FootprintSqFt()))
	snap.SetGauge("topper.perf_power", "Gflop/kW", "performance per kilowatt", tco.PerfPerPower(*gflops, cl.TotalPowerKW()))
	d.Textf("%s\n", snap.Table("Cost of ownership and density ("+cl.Name+")", "topper."))
	d.Check(d.Finish())
}
