// Command toppercalc evaluates the paper's cost model — TCO and ToPPeR —
// for a user-described cluster, so the §4 analysis can be repeated with
// your own numbers. With -optimize it instead sweeps the whole design
// space (CPU × packaging × fabric × node count × ambient) and prints
// the Pareto frontier for ToPPeR, perf/watt and perf/space.
//
// Usage:
//
//	toppercalc -nodes 24 -watts 85 -acquisition 17000 -gflops 2.8
//	toppercalc -blade -nodes 240 -watts 15 -acquisition 260000 -gflops 36
//	toppercalc -blade -format json
//	toppercalc -optimize
//	toppercalc -optimize -opt-cpus TM5600,Athlon -opt-fabrics fe,ge,ge-fattree -max-power-kw 10
//
// The flags are a thin parse layer over core.TCOSpec and
// core.TopperOptSpec — the same experiment specs the gridd gateway
// accepts as JSON.
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// splitCSV parses a comma-separated flag value ("" → nil).
func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitCSV(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitCSV(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	d := core.NewDriver("toppercalc")
	nodes := flag.Int("nodes", 24, "compute node count")
	watts := flag.Float64("watts", 85, "per-node power draw under load (W)")
	acq := flag.Float64("acquisition", 17000, "acquisition cost (hardware + software, $)")
	gflops := flag.Float64("gflops", 2.8, "delivered performance (Gflops)")
	blade := flag.Bool("blade", false, "bladed packaging (RLX-style chassis, no active cooling, managed)")
	ambient := flag.Float64("ambient", 24, "machine-room ambient temperature (°C); an explicit 0 means 0 °C, not the default")
	years := flag.Float64("years", 4, "operational lifetime (years)")
	kwh := flag.Float64("kwh", 0.10, "electricity rate ($/kWh); an explicit 0 means free electricity, not the default")
	space := flag.Float64("space", 100, "floor-space lease rate ($/ft²/year)")
	cpuHour := flag.Float64("cpuhour", 5, "downtime charge ($/CPU-hour)")

	optimize := flag.Bool("optimize", false, "sweep the design space and print the Pareto frontier instead of pricing one cluster")
	optCPUs := flag.String("opt-cpus", "", "optimizer CPU axis, comma-separated (PIII,Alpha,TM5600,Power3,Athlon; empty = all)")
	optPacks := flag.String("opt-packs", "", "optimizer packaging axis (traditional,blade; empty = both)")
	optFabrics := flag.String("opt-fabrics", "", "optimizer fabric axis, base[-topology] (e.g. fe,ge,ge-fattree,ge-torus3d; empty = fe,ge)")
	optNodes := flag.String("opt-nodes", "", "optimizer node-count axis, comma-separated integers (empty = default ladder)")
	optAmbients := flag.String("opt-ambients", "", "optimizer ambient axis, comma-separated °C (empty = 18,24,27,35)")
	optParticles := flag.Int("opt-particles", 0, "optimizer workload size in particles (0 = 60000)")
	maxPowerKW := flag.Float64("max-power-kw", 0, "optimizer budget: max total power in kW (0 = uncapped)")
	maxSpaceSqFt := flag.Float64("max-space-sqft", 0, "optimizer budget: max floor space in ft² (0 = uncapped)")
	maxTCO := flag.Float64("max-tco", 0, "optimizer budget: max TCO in $ (0 = uncapped)")
	optWorkers := flag.Int("opt-workers", 0, "optimizer worker count (0 = all cores); the frontier is identical at any setting")
	optNoMemo := flag.Bool("opt-no-memo", false, "disable the optimizer's network-solve memo (slower, same frontier)")
	optNoPrune := flag.Bool("opt-no-prune", false, "disable the optimizer's dominance pruning (exhaustive, same frontier)")
	flag.Parse()
	d.Check(d.Setup())

	if *optimize {
		optNodesList, err := splitInts(*optNodes)
		d.Check(err)
		optAmbientsList, err := splitFloats(*optAmbients)
		d.Check(err)
		spec := &core.TopperOptSpec{
			CPUs:         splitCSV(*optCPUs),
			Packs:        splitCSV(*optPacks),
			Fabrics:      splitCSV(*optFabrics),
			Nodes:        optNodesList,
			Ambients:     optAmbientsList,
			Particles:    *optParticles,
			MaxPowerKW:   *maxPowerKW,
			MaxSpaceSqFt: *maxSpaceSqFt,
			MaxTCOUSD:    *maxTCO,
			Years:        *years,
			KWh:          kwh,
			Workers:      *optWorkers,
			NoMemo:       *optNoMemo,
			NoPrune:      *optNoPrune,
		}
		_, err = d.RunSpec(spec)
		d.Check(err)
		d.Check(d.Finish())
		return
	}

	_, err := d.RunSpec(&core.TCOSpec{
		Nodes:       *nodes,
		Watts:       *watts,
		Acquisition: *acq,
		Gflops:      *gflops,
		Blade:       *blade,
		Ambient:     ambient,
		Years:       *years,
		KWh:         kwh,
		Space:       *space,
		CPUHour:     *cpuHour,
	})
	d.Check(err)
	d.Check(d.Finish())
}
