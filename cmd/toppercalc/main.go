// Command toppercalc evaluates the paper's cost model — TCO and ToPPeR —
// for a user-described cluster, so the §4 analysis can be repeated with
// your own numbers.
//
// Usage:
//
//	toppercalc -nodes 24 -watts 85 -acquisition 17000 -gflops 2.8
//	toppercalc -blade -nodes 240 -watts 15 -acquisition 260000 -gflops 36
//	toppercalc -blade -format json
//
// The flags are a thin parse layer over core.TCOSpec — the same
// experiment spec the gridd gateway accepts as JSON.
package main

import (
	"flag"

	"repro/internal/core"
)

func main() {
	d := core.NewDriver("toppercalc")
	nodes := flag.Int("nodes", 24, "compute node count")
	watts := flag.Float64("watts", 85, "per-node power draw under load (W)")
	acq := flag.Float64("acquisition", 17000, "acquisition cost (hardware + software, $)")
	gflops := flag.Float64("gflops", 2.8, "delivered performance (Gflops)")
	blade := flag.Bool("blade", false, "bladed packaging (RLX-style chassis, no active cooling, managed)")
	ambient := flag.Float64("ambient", 24, "machine-room ambient temperature (°C)")
	years := flag.Float64("years", 4, "operational lifetime (years)")
	kwh := flag.Float64("kwh", 0.10, "electricity rate ($/kWh)")
	space := flag.Float64("space", 100, "floor-space lease rate ($/ft²/year)")
	cpuHour := flag.Float64("cpuhour", 5, "downtime charge ($/CPU-hour)")
	flag.Parse()
	d.Check(d.Setup())

	_, err := d.RunSpec(&core.TCOSpec{
		Nodes:       *nodes,
		Watts:       *watts,
		Acquisition: *acq,
		Gflops:      *gflops,
		Blade:       *blade,
		Ambient:     ambient,
		Years:       *years,
		KWh:         kwh,
		Space:       *space,
		CPUHour:     *cpuHour,
	})
	d.Check(err)
	d.Check(d.Finish())
}
