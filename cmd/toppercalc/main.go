// Command toppercalc evaluates the paper's cost model — TCO and ToPPeR —
// for a user-described cluster, so the §4 analysis can be repeated with
// your own numbers.
//
// Usage:
//
//	toppercalc -nodes 24 -watts 85 -acquisition 17000 -gflops 2.8
//	toppercalc -blade -nodes 240 -watts 15 -acquisition 260000 -gflops 36
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/tco"
)

func main() {
	nodes := flag.Int("nodes", 24, "compute node count")
	watts := flag.Float64("watts", 85, "per-node power draw under load (W)")
	acq := flag.Float64("acquisition", 17000, "acquisition cost (hardware + software, $)")
	gflops := flag.Float64("gflops", 2.8, "delivered performance (Gflops)")
	blade := flag.Bool("blade", false, "bladed packaging (RLX-style chassis, no active cooling, managed)")
	ambient := flag.Float64("ambient", 24, "machine-room ambient temperature (°C)")
	years := flag.Float64("years", 4, "operational lifetime (years)")
	kwh := flag.Float64("kwh", 0.10, "electricity rate ($/kWh)")
	space := flag.Float64("space", 100, "floor-space lease rate ($/ft²/year)")
	cpuHour := flag.Float64("cpuhour", 5, "downtime charge ($/CPU-hour)")
	flag.Parse()

	node := cluster.NodeSpec{
		Name:                  "custom node",
		CPUModel:              "custom",
		WattsLoad:             *watts,
		RequiresActiveCooling: !*blade,
	}
	pack := cluster.TraditionalPackaging()
	admin := tco.TraditionalAdmin()
	outages := tco.TraditionalOutages()
	if *blade {
		pack = cluster.BladePackaging()
		admin = tco.BladeAdmin()
		outages = tco.BladeOutages()
	}
	cl, err := cluster.New("custom", node, pack, *nodes, *ambient)
	check(err)

	rates := tco.Rates{
		AdminPerHour:       100,
		ElectricityPerKWh:  *kwh,
		SpacePerSqFtYear:   *space,
		DowntimePerCPUHour: *cpuHour,
		Years:              *years,
	}
	b, err := tco.Compute(tco.Config{
		Name:           "custom",
		AcquisitionUSD: *acq,
		Cluster:        cl,
		Admin:          admin,
		Outages:        outages,
	}, rates)
	check(err)

	rel := cluster.DefaultReliability()
	fmt.Printf("Cluster: %d nodes, %.1f kW compute + %.1f kW cooling, %.0f ft², %s\n",
		*nodes, cl.ComputePowerKW(), cl.CoolingPowerKW(), cl.FootprintSqFt(), pack.Name)
	fmt.Printf("Reliability model: %.1f expected failures/year, availability %.4f\n\n",
		cl.ExpectedFailuresPerYear(rel), cl.Availability(rel))
	fmt.Printf("%-18s $%10.0f\n", "Acquisition", b.Acquisition)
	fmt.Printf("%-18s $%10.0f\n", "System admin", b.SysAdmin)
	fmt.Printf("%-18s $%10.0f\n", "Power & cooling", b.PowerCooling)
	fmt.Printf("%-18s $%10.0f\n", "Space", b.Space)
	fmt.Printf("%-18s $%10.0f\n", "Downtime", b.Downtime)
	fmt.Printf("%-18s $%10.0f\n\n", "TCO", b.TCO())
	fmt.Printf("Price/performance (acquisition): $%.2f per Mflops\n", tco.PricePerf(b.Acquisition, *gflops))
	fmt.Printf("ToPPeR (total price-performance): $%.2f per Mflops\n", tco.ToPPeR(b.TCO(), *gflops))
	fmt.Printf("Performance/space: %.1f Mflops/ft²\n", tco.PerfPerSpace(*gflops, cl.FootprintSqFt()))
	fmt.Printf("Performance/power: %.2f Gflops/kW\n", tco.PerfPerPower(*gflops, cl.TotalPowerKW()))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "toppercalc:", err)
		os.Exit(1)
	}
}
