package main

import (
	"testing"

	"repro/internal/core"
)

// goldenDefaultText is what `toppercalc` with no flags has always
// printed. The -optimize mode and the flag-help fixes must not move a
// byte of it: scripts diff this output.
const goldenDefaultText = "Cluster: 24 nodes, 2.0 kW compute + 1.0 kW cooling, 20 ft², traditional rackmount\nReliability model: 6.1 expected failures/year, availability 0.9972\n\nCost of ownership and density (custom)\nMetric                     Value               Unit     \n---------------------------------------------------------\ntopper.cost.acquisition    17000               $        \ntopper.cost.downtime       11520               $        \ntopper.cost.power_cooling  10722.240000000002  $        \ntopper.cost.space          8000                $        \ntopper.cost.sysadmin       60000               $        \ntopper.cost.tco            107242.24           $        \ntopper.perf_power          0.9150326797385621  Gflop/kW \ntopper.perf_space          140                 Mflop/ft2\ntopper.priceperf           6.071428571428571   $/Mflops \ntopper.topper              38.3008             $/Mflops \n\n"

// TestDefaultOutputByteIdentical runs the exact spec the CLI's default
// flags construct (including the explicit-zero-capable Ambient and KWh
// pointers) and pins the rendering byte for byte.
func TestDefaultOutputByteIdentical(t *testing.T) {
	amb, kwh := 24.0, 0.10
	r, err := core.RunSpec(core.NewRun(), &core.TCOSpec{
		Nodes: 24, Watts: 85, Acquisition: 17000, Gflops: 2.8,
		Ambient: &amb, Years: 4, KWh: &kwh, Space: 100, CPUHour: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Text != goldenDefaultText {
		t.Fatalf("default output changed:\ngot  %q\nwant %q", r.Text, goldenDefaultText)
	}
}

// TestExplicitZerosHonored: -ambient 0 and -kwh 0 are physically
// meaningful (a 0 °C machine room, free electricity) and must reach the
// model as zeros, not be replaced by the defaults — the pointer
// semantics the flag help documents.
func TestExplicitZerosHonored(t *testing.T) {
	amb, kwh := 0.0, 0.0
	r, err := core.RunSpec(core.NewRun(), &core.TCOSpec{
		Nodes: 24, Watts: 85, Acquisition: 17000, Gflops: 2.8,
		Ambient: &amb, Years: 4, KWh: &kwh, Space: 100, CPUHour: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Text == goldenDefaultText {
		t.Fatal("explicit zeros produced the default output — they were overwritten by defaults")
	}
}

func TestCSVFlagParsing(t *testing.T) {
	if got := splitCSV(" fe, ge-fattree ,"); len(got) != 2 || got[0] != "fe" || got[1] != "ge-fattree" {
		t.Errorf("splitCSV = %v", got)
	}
	if got := splitCSV(""); got != nil {
		t.Errorf("splitCSV(\"\") = %v, want nil", got)
	}
	ints, err := splitInts("8,24,64")
	if err != nil || len(ints) != 3 || ints[2] != 64 {
		t.Errorf("splitInts = %v, %v", ints, err)
	}
	if _, err := splitInts("8,x"); err == nil {
		t.Error("splitInts accepted a non-integer")
	}
	floats, err := splitFloats("18,27.5")
	if err != nil || len(floats) != 2 || floats[1] != 27.5 {
		t.Errorf("splitFloats = %v, %v", floats, err)
	}
	if _, err := splitFloats("18,warm"); err == nil {
		t.Error("splitFloats accepted a non-number")
	}
}
