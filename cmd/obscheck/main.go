// Command obscheck validates the repository's JSON artifacts against
// their checked-in schema documents. CI uses it to pin four contracts:
// the driver observability snapshot, the experiment-spec envelope, the
// gridd gateway's generic result document, and the topperopt design-
// space result (frontier-point fields plus optimizer counters).
//
//	metablade -obs-json obs.json -particles 4000
//	obscheck obs.json
//	obscheck -mode spec request.json
//	obscheck -mode result result.json
//	obscheck -mode topperopt result.json
//
// Each mode has a default schema under schema/; -schema overrides it.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// modes maps -mode to its default schema and validator.
var modes = map[string]struct {
	schema   string
	validate func(schemaJSON, doc []byte) error
}{
	"obs":    {"schema/obs_snapshot_v1.json", obs.ValidateSnapshotJSON},
	"spec":   {"schema/experiment_spec_v1.json", core.ValidateSpecJSON},
	"result": {"schema/gridd_result_v1.json", serve.ValidateResultJSON},
	"topperopt": {"schema/topperopt_result_v1.json", serve.ValidateTopperOptResultJSON},
}

func main() {
	mode := flag.String("mode", "obs", "artifact type to validate (obs, spec, result, topperopt)")
	schemaPath := flag.String("schema", "", "schema document to validate against (default per -mode)")
	flag.Parse()
	m, ok := modes[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "obscheck: unknown -mode %q (want obs, spec, result or topperopt)\n", *mode)
		os.Exit(2)
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: obscheck [-mode obs|spec|result|topperopt] [-schema schema.json] artifact.json...")
		os.Exit(2)
	}
	if *schemaPath == "" {
		*schemaPath = m.schema
	}
	schemaJSON, err := os.ReadFile(*schemaPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
	bad := false
	for _, path := range flag.Args() {
		doc, err := os.ReadFile(path)
		if err == nil {
			err = m.validate(schemaJSON, doc)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}
