// Command obscheck validates an obs snapshot JSON artifact against a
// schema document. CI uses it to pin the driver observability contract:
//
//	metablade -obs-json obs.json -particles 4000
//	obscheck -schema schema/obs_snapshot_v1.json obs.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	schemaPath := flag.String("schema", "schema/obs_snapshot_v1.json", "schema document to validate against")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: obscheck [-schema schema.json] snapshot.json...")
		os.Exit(2)
	}
	schemaJSON, err := os.ReadFile(*schemaPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
	bad := false
	for _, path := range flag.Args() {
		snap, err := os.ReadFile(path)
		if err == nil {
			err = obs.ValidateSnapshotJSON(schemaJSON, snap)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}
