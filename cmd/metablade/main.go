// Command metablade regenerates the paper's evaluation: every table
// (1–7) and Figure 3, from the simulated Bladed Beowulf and its
// comparison machines.
//
// Usage:
//
//	metablade -table 1        # one table
//	metablade -figure 3       # the N-body density rendering
//	metablade -all            # everything
//	metablade -table 3 -class W
//	metablade -table 2 -particles 60000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/nas"
	"repro/internal/par"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (1..7)")
	figure := flag.Int("figure", 0, "figure number to regenerate (3)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	class := flag.String("class", "W", "NPB class for table 3 (S, W, A)")
	particles := flag.Int("particles", 0, "particle count override for table 2 / figure 3")
	procs := flag.Int("procs", runtime.GOMAXPROCS(0),
		"host worker-pool width for tree build and force loops (independent of the simulated blade count)")
	flag.Parse()
	par.SetWorkers(*procs)

	if !*all && *table == 0 && *figure == 0 {
		flag.Usage()
		os.Exit(2)
	}
	run := func(n int) bool { return *all || *table == n }

	if run(1) {
		_, t, err := core.Table1()
		check(err)
		fmt.Println(t)
	}
	if run(2) {
		cfg := core.DefaultTable2Config()
		if *particles > 0 {
			cfg.Particles = *particles
		}
		_, t, err := core.Table2(cfg)
		check(err)
		fmt.Println(t)
	}
	if run(3) {
		_, t, err := core.Table3(nas.Class((*class)[0]))
		check(err)
		fmt.Println(t)
	}
	if run(4) {
		_, t, err := core.Table4()
		check(err)
		fmt.Println(t)
	}
	if run(5) {
		_, t, err := core.Table5()
		check(err)
		fmt.Println(t)
		s, err := core.ToPPeR()
		check(err)
		fmt.Printf("ToPPeR (TCO $/Mflops): traditional %.2f vs blade %.2f — advantage %.2fx\n",
			s.TradToPPeR, s.BladeToPPeR, s.ToPPeRAdvantage)
		fmt.Printf("Acquisition price/perf: traditional %.2f vs blade %.2f (blade costs %.2fx more per Mflops to acquire)\n\n",
			s.TradPricePerf, s.BladePricePerf, s.PricePerfRatio)
	}
	if run(6) || run(7) {
		_, t6, t7, err := core.SpacePower()
		check(err)
		if run(6) {
			fmt.Println(t6)
		}
		if run(7) {
			fmt.Println(t7)
		}
	}
	if *all || *figure == 3 {
		cfg := core.DefaultFigure3Config()
		if *particles > 0 {
			cfg.Particles = *particles
		}
		img, sys, err := core.Figure3(cfg)
		check(err)
		fmt.Printf("Figure 3: projected density after %d steps of a %d-particle collapse (%d interactions computed)\n",
			cfg.Steps, cfg.Particles, sys.Interactions)
		fmt.Println(img.ASCII())
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "metablade:", err)
		os.Exit(1)
	}
}
