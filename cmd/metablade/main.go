// Command metablade regenerates the paper's evaluation: every table
// (1–7) and Figure 3, from the simulated Bladed Beowulf and its
// comparison machines.
//
// Usage:
//
//	metablade -table 1        # one table
//	metablade -figure 3       # the N-body density rendering
//	metablade -all            # everything
//	metablade -table 3 -class W
//	metablade -table 2 -particles 60000
//	metablade -table 2 -sweep     # run the sweep's worlds concurrently
//	metablade -obs-json out.json -trace out.trace
//
// -sweep runs Table 2's independent per-CPU-count worlds concurrently
// on the host pool (bounded by -procs); rows and observability output
// are bit-identical to the serial sweep.
//
// With an observability output requested (-obs-json, -obs-csv, -trace,
// or -format json) and no explicit table or figure selection, metablade
// runs Tables 1 and 2 — the instrumented microkernel and scalability
// experiments whose CMS, MPI and treecode counters populate the
// snapshot.
package main

import (
	"flag"
	"os"

	"repro/internal/core"
	"repro/internal/nas"
)

func main() {
	d := core.NewDriver("metablade")
	table := flag.Int("table", 0, "table number to regenerate (1..7)")
	figure := flag.Int("figure", 0, "figure number to regenerate (3)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	class := flag.String("class", "W", "NPB class for table 3 (S, W, A)")
	particles := flag.Int("particles", 0, "particle count override for table 2 / figure 3")
	sweep := flag.Bool("sweep", false, "run table 2's independent worlds concurrently on the host pool")
	flag.Parse()
	d.Check(d.Setup())

	wantObs := d.ObsJSON != "" || d.ObsCSV != "" || d.TracePath != "" || d.Format == "json"
	if !*all && *table == 0 && *figure == 0 {
		if !wantObs {
			flag.Usage()
			os.Exit(2)
		}
		// Observability-only invocation: run the two instrumented
		// experiments that exercise CMS, MPI and the treecode.
		_, t1, err := d.Run.Table1()
		d.Check(err)
		d.Textf("%s\n", t1)
		cfg := core.DefaultTable2Config()
		cfg.Concurrent = *sweep
		cfg.Engine = d.Engine
		if *particles > 0 {
			cfg.Particles = *particles
		}
		_, t2, err := d.Run.Table2(cfg)
		d.Check(err)
		d.Textf("%s\n", t2)
		d.Check(d.Finish())
		return
	}
	run := func(n int) bool { return *all || *table == n }

	if run(1) {
		_, t, err := d.Run.Table1()
		d.Check(err)
		d.Textf("%s\n", t)
	}
	if run(2) {
		cfg := core.DefaultTable2Config()
		cfg.Concurrent = *sweep
		cfg.Engine = d.Engine
		if *particles > 0 {
			cfg.Particles = *particles
		}
		_, t, err := d.Run.Table2(cfg)
		d.Check(err)
		d.Textf("%s\n", t)
	}
	if run(3) {
		_, t, err := d.Run.Table3(nas.Class((*class)[0]))
		d.Check(err)
		d.Textf("%s\n", t)
	}
	if run(4) {
		_, t, err := d.Run.Table4()
		d.Check(err)
		d.Textf("%s\n", t)
	}
	if run(5) {
		_, t, err := d.Run.Table5()
		d.Check(err)
		d.Textf("%s\n", t)
		s, err := d.Run.ToPPeR()
		d.Check(err)
		d.Textf("ToPPeR (TCO $/Mflops): traditional %.2f vs blade %.2f — advantage %.2fx\n",
			s.TradToPPeR, s.BladeToPPeR, s.ToPPeRAdvantage)
		d.Textf("Acquisition price/perf: traditional %.2f vs blade %.2f (blade costs %.2fx more per Mflops to acquire)\n\n",
			s.TradPricePerf, s.BladePricePerf, s.PricePerfRatio)
	}
	if run(6) || run(7) {
		_, t6, t7, err := d.Run.SpacePower()
		d.Check(err)
		if run(6) {
			d.Textf("%s\n", t6)
		}
		if run(7) {
			d.Textf("%s\n", t7)
		}
	}
	if *all || *figure == 3 {
		cfg := core.DefaultFigure3Config()
		cfg.Engine = d.Engine
		if *particles > 0 {
			cfg.Particles = *particles
		}
		img, sys, err := d.Run.Figure3(cfg)
		d.Check(err)
		d.Textf("Figure 3: projected density after %d steps of a %d-particle collapse (%d interactions computed)\n",
			cfg.Steps, cfg.Particles, sys.Interactions)
		d.Textf("%s\n", img.ASCII())
	}
	d.Check(d.Finish())
}
