// Command metablade regenerates the paper's evaluation: every table
// (1–7) and Figure 3, from the simulated Bladed Beowulf and its
// comparison machines.
//
// Usage:
//
//	metablade -table 1        # one table
//	metablade -figure 3       # the N-body density rendering
//	metablade -all            # everything
//	metablade -table 3 -class W
//	metablade -table 2 -particles 60000
//	metablade -table 2 -sweep     # run the sweep's worlds concurrently
//	metablade -table 2 -fabric fattree -mpi-mode event
//	metablade -obs-json out.json -trace out.trace
//
// -sweep runs Table 2's independent per-CPU-count worlds concurrently
// on the host pool (bounded by -procs); rows and observability output
// are bit-identical to the serial sweep. -fabric selects the
// interconnect topology (star, fattree, torus2d, torus3d) and
// -mpi-mode the rank scheduler (auto, goroutine, event); schedulers
// are bit-identical, topologies change simulated times.
//
// With an observability output requested (-obs-json, -obs-csv, -trace,
// or -format json) and no explicit table or figure selection, metablade
// runs Tables 1 and 2 — the instrumented microkernel and scalability
// experiments whose CMS, MPI and treecode counters populate the
// snapshot.
//
// The flags are a thin parse layer: every selection constructs a
// core.ExperimentSpec and runs it through the unified experiment API —
// the same specs the gridd gateway accepts as JSON.
package main

import (
	"flag"
	"os"

	"repro/internal/core"
)

func main() {
	d := core.NewDriver("metablade")
	table := flag.Int("table", 0, "table number to regenerate (1..7)")
	figure := flag.Int("figure", 0, "figure number to regenerate (3)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	class := flag.String("class", "W", "NPB class for table 3 (S, W, A)")
	particles := flag.Int("particles", 0, "particle count override for table 2 / figure 3")
	sweep := flag.Bool("sweep", false, "run table 2's independent worlds concurrently on the host pool")
	fabric := flag.String("fabric", "", "table 2 interconnect topology: star (default), fattree, torus2d, torus3d")
	mode := flag.String("mpi-mode", "", "table 2 rank scheduler: auto (default: event at >= 256 ranks), goroutine, event")
	flag.Parse()
	d.Check(d.Setup())

	table2Spec := func() *core.Table2Spec {
		return &core.Table2Spec{
			Particles:  *particles,
			Concurrent: *sweep,
			EngineSpec: d.SpecEngine(),
			FabricModeSpec: core.FabricModeSpec{
				Fabric: *fabric,
				Mode:   *mode,
			},
		}
	}
	runSpec := func(s core.ExperimentSpec) {
		_, err := d.RunSpec(s)
		d.Check(err)
	}

	wantObs := d.ObsJSON != "" || d.ObsCSV != "" || d.TracePath != "" || d.Format == "json"
	if !*all && *table == 0 && *figure == 0 {
		if !wantObs {
			flag.Usage()
			os.Exit(2)
		}
		// Observability-only invocation: run the two instrumented
		// experiments that exercise CMS, MPI and the treecode.
		runSpec(&core.Table1Spec{})
		runSpec(table2Spec())
		d.Check(d.Finish())
		return
	}
	run := func(n int) bool { return *all || *table == n }

	if run(1) {
		runSpec(&core.Table1Spec{})
	}
	if run(2) {
		runSpec(table2Spec())
	}
	if run(3) {
		runSpec(&core.Table3Spec{Class: *class})
	}
	if run(4) {
		runSpec(&core.Table4Spec{})
	}
	if run(5) {
		runSpec(&core.Table5Spec{})
		runSpec(&core.ToPPeRSpec{})
	}
	if run(6) || run(7) {
		runSpec(&core.SpacePowerSpec{Table6: run(6), Table7: run(7)})
	}
	if *all || *figure == 3 {
		runSpec(&core.Figure3Spec{Particles: *particles, EngineSpec: d.SpecEngine()})
	}
	d.Check(d.Finish())
}
