// Command benchreport runs the repository's host-performance benchmarks
// in-process (via testing.Benchmark) and emits a machine-readable report:
// host ns/op plus the simulated-machine metrics (cycles, Mflops) for the
// gravity microkernel, a treecode force step, the MPI substrate's
// allreduce hot path (pooled against the unpooled baseline), the
// parallel rank-sweep harness (serial against concurrent against the
// event scheduler), the large-p event core (a p=4096 EP world against
// the goroutine scheduler's extrapolated footprint) and the persistent
// tree maintainer (incremental re-sort + octant patching against a
// fresh build every step).
//
//	benchreport -out BENCH_pr10.json           # write the report
//	benchreport -guard                         # fail on in-run regressions
//	benchreport -compare old.json              # fail on >10% ns/op slowdown
//
// The report format lives in internal/benchfmt; cmd/gridload merges the
// experiment gateway's load-test entries into the same file.
//
// The -guard checks are machine-independent where possible: simulated
// cycle counts and virtual makespans are deterministic, so "gears must
// not slow the simulated machine down", "pooling must cut allreduce
// allocations at least 5x", "the concurrent and event sweeps must
// simulate the exact same cluster" and "the event core must run p=4096
// with ≥10x fewer goroutines than the goroutine path would take" are
// exact; host-side checks (parallel paths must not run slower than
// serial) carry a 10% tolerance, benchstat-style.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/designopt"
	"repro/internal/kernels"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/nbody"
	"repro/internal/netsim"
	"repro/internal/treecode"
)

// Entry and Report are the shared benchfmt types; the aliases keep the
// benchmark constructors below readable.
type (
	Entry  = benchfmt.Entry
	Report = benchfmt.Report
)

// slowdownTolerance is the benchstat-style regression threshold: a
// guarded pair fails when the measured side is more than 10% slower.
const slowdownTolerance = 1.10

func main() {
	out := flag.String("out", "", "write the report as JSON to this `path`")
	guard := flag.Bool("guard", false, "fail on in-run regressions (gears must not raise simulated cycles; parallel must not run >10% slower than serial)")
	compare := flag.String("compare", "", "compare against a previous report at this `path`; fail on >10% host slowdown of guarded benchmarks")
	flag.Parse()

	rep := Report{
		Schema:     benchfmt.Schema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	rep.Results = append(rep.Results, gravMicroEntries()...)
	rep.Results = append(rep.Results, treecodeStepEntry())
	rep.Results = append(rep.Results, treecodeStepExactEntry())
	rep.Results = append(rep.Results, treecodeReuseEntries()...)
	rep.Results = append(rep.Results, forceEngineEntries()...)
	rep.Results = append(rep.Results, blockStepEntries()...)
	rep.Results = append(rep.Results, hostParallelEntries()...)
	rep.Results = append(rep.Results, mpiEntries()...)
	rep.Results = append(rep.Results, largePEntries()...)
	rep.Results = append(rep.Results, sweepEntries()...)
	rep.Results = append(rep.Results, designoptEntries()...)

	for _, e := range rep.Results {
		fmt.Printf("%-44s %14.0f ns/op  %d allocs/op", e.Name, e.NsPerOp, e.AllocsPerOp)
		for _, k := range []string{"sim_cycles", "sim_mflops", "sim_seconds", "rms_error", "energy_drift", "max_rung_used"} {
			if v, ok := e.Metrics[k]; ok {
				fmt.Printf("  %s=%.6g", k, v)
			}
		}
		fmt.Println()
	}

	if *out != "" {
		check(rep.Write(*out))
	}
	if *guard {
		check(guardReport(&rep))
		fmt.Println("guard: all regression checks passed")
	}
	if *compare != "" {
		check(compareReports(*compare, &rep))
		fmt.Printf("compare: no hostparallel/mpi/serve/designopt/treecode-reuse benchmark slowed down >%.0f%% vs %s\n",
			(slowdownTolerance-1)*100, *compare)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

// gravMicroEntries benchmarks the Table 1 gravity microkernel on the
// simulated TM5600, single-gear and tiered.
func gravMicroEntries() []Entry {
	var out []Entry
	for _, variant := range []kernels.GravVariant{kernels.GravMath, kernels.GravKarp} {
		for _, gears := range []bool{false, true} {
			c := cpu.NewTM5600()
			c.Gears = gears
			g := kernels.DefaultGravMicro(variant)
			var cycles, mflops float64
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					prog, st, err := g.Build()
					check2(b, err)
					res, err := c.RunKernel(prog, st)
					check2(b, err)
					cycles = res.Cycles
					mflops = res.Mflops()
				}
			})
			out = append(out, Entry{
				Name:        fmt.Sprintf("gravmicro/%s/gears=%t", variant, gears),
				NsPerOp:     float64(r.NsPerOp()),
				AllocsPerOp: r.AllocsPerOp(),
				Metrics: map[string]float64{
					"sim_cycles": cycles,
					"sim_mflops": mflops,
				},
			})
		}
	}
	return out
}

// treecodeStepEntry benchmarks one full treecode force step on the host
// and attaches the simulated single-blade TM5600 rate for the same step.
func treecodeStepEntry() Entry {
	const n = 20000
	sys := nbody.NewPlummer(n, 1, 2001)
	f := &treecode.Forcer{Theta: 0.7, Workers: runtime.GOMAXPROCS(0), Reuse: treecode.ReuseOff}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			check2(b, f.Forces(sys))
		}
	})
	e := Entry{
		Name:        fmt.Sprintf("treecode/step/n=%d", n),
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		Metrics:     map[string]float64{},
	}
	// Simulated side: the same step costed on one TM5600 blade.
	costs, err := cpu.CalibrateFor(cpu.NewTM5600(), cpu.MissRateTree)
	check(err)
	cm := treecode.CostModel{
		SecondsPerInteraction: costs.Seconds(treecode.InteractionMix()),
		SecondsPerBuildSource: costs.Seconds(treecode.BuildMix()),
	}
	w, err := mpi.NewWorld(1, netsim.FastEthernet())
	check(err)
	res, err := treecode.ParallelForces(w, nbody.NewPlummer(n, 1, 2001), treecode.ParallelConfig{
		Theta: 0.7, Eps: sys.Eps, Cost: cm,
	})
	check(err)
	if res.SimTime > 0 {
		e.Metrics["sim_seconds"] = res.SimTime
		e.Metrics["sim_mflops"] = float64(res.Stats.Flops()) / res.SimTime / 1e6
	}
	return e
}

// treecodeStepExactEntry benchmarks the PR 5 default — the bit-exact
// interaction-list engine — on the same full force step. It is the
// uniform-stepping baseline the block-timestep guard prices against:
// an exact integrator stepping every particle at the finest occupied
// dt pays this once per tick.
func treecodeStepExactEntry() Entry {
	const n = 20000
	sys := nbody.NewPlummer(n, 1, 2001)
	sys.Eps = blockStepEps
	f := &treecode.Forcer{Theta: 0.7, Workers: runtime.GOMAXPROCS(0), Engine: treecode.EngineList,
		Reuse: treecode.ReuseOff}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			check2(b, f.Forces(sys))
		}
	})
	return Entry{
		Name:        fmt.Sprintf("treecode/step-exact/n=%d", n),
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// treecodeReuseEntries prices the persistent tree maintainer (PR 10).
// The head-to-head pair isolates the structural work a step really
// pays: treecode/reuse/maintain drifts the system by one leapfrog kick
// and maintains the warm TreeCache (adaptive re-sort + octant
// patching, zero steady-state allocations), while maintain-fresh pays
// a full Build for the identical drift sequence. Both run single
// worker so the ratio measures the algorithm, not the pool. The
// reuse/step and reuse/blockstep entries then measure the end-to-end
// integrator paths with reuse on, guarded against the ReuseOff
// baselines recorded by treecodeStepEntry and blockStepEntries:
// maintained trees are bit-identical, so neither may ever cost more
// than noise — force sweeps dominate both paths, so the build savings
// show up as a bounded win, largest on the build-heavy block
// hierarchy.
func treecodeReuseEntries() []Entry {
	const (
		n  = 20000
		dt = 0.005
	)
	drift := func(s *nbody.System) {
		for i := 0; i < s.N(); i++ {
			s.X[i] += dt * s.VX[i]
			s.Y[i] += dt * s.VY[i]
			s.Z[i] += dt * s.VZ[i]
		}
	}

	msys := nbody.NewPlummer(n, 1, 2001)
	cache := treecode.NewTreeCache()
	opt := treecode.BuildOptions{Workers: 1}
	srcs := treecode.SourcesFromSystem(msys)
	_, err := cache.Step(srcs, opt)
	check(err)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			drift(msys)
			srcs = treecode.AppendSources(srcs[:0], msys)
			if _, err := cache.Step(srcs, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	st := cache.Stats
	out := []Entry{{
		Name:        fmt.Sprintf("treecode/reuse/maintain/n=%d", n),
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		Metrics: map[string]float64{
			"nodes_reused":     float64(st.NodesReused),
			"subtrees_rebuilt": float64(st.SubtreesRebuilt),
			"keys_moved":       float64(st.KeysMoved),
			"maintained_steps": float64(st.Steps - st.FullBuilds),
			"full_builds":      float64(st.FullBuilds),
		},
	}}

	fsys := nbody.NewPlummer(n, 1, 2001)
	fsrcs := treecode.SourcesFromSystem(fsys)
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			drift(fsys)
			fsrcs = treecode.AppendSources(fsrcs[:0], fsys)
			_, err := treecode.Build(fsrcs, opt)
			check2(b, err)
		}
	})
	out = append(out, Entry{
		Name:        fmt.Sprintf("treecode/reuse/maintain-fresh/n=%d", n),
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
	})

	// End-to-end force step with the maintainer on, plus an exact
	// bit-identity probe against the fresh-build path: a short leapfrog
	// either way must produce the same accelerations bit for bit.
	ssys := nbody.NewPlummer(n, 1, 2001)
	sf := &treecode.Forcer{Theta: 0.7, Workers: runtime.GOMAXPROCS(0), Reuse: treecode.ReuseOn}
	check(sf.Forces(ssys)) // warm the cache and walk index
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			drift(ssys)
			check2(b, sf.Forces(ssys))
		}
	})
	identical := 1.0
	a := nbody.NewPlummer(4096, 1, 7)
	bsys := nbody.NewPlummer(4096, 1, 7)
	check(a.Leapfrog(&treecode.Forcer{Theta: 0.7, Reuse: treecode.ReuseOn}, dt, 4))
	check(bsys.Leapfrog(&treecode.Forcer{Theta: 0.7, Reuse: treecode.ReuseOff}, dt, 4))
	for i := 0; i < a.N(); i++ {
		if math.Float64bits(a.AX[i]) != math.Float64bits(bsys.AX[i]) ||
			math.Float64bits(a.X[i]) != math.Float64bits(bsys.X[i]) {
			identical = 0
		}
	}
	out = append(out, Entry{
		Name:        fmt.Sprintf("treecode/reuse/step/n=%d", n),
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		Metrics:     map[string]float64{"bit_identical": identical},
	})

	// The block hierarchy re-evaluates forces once per occupied rung
	// tick, each previously paying a redundant build — the build-heavy
	// regime the maintainer was built for. Same system, config and
	// per-op step count as treecode/blockstep/n=20000.
	bsys2 := nbody.NewPlummer(n, 1, 2001)
	bsys2.Eps = blockStepEps
	bf := &treecode.Forcer{Theta: 0.7, Workers: runtime.GOMAXPROCS(0), Reuse: treecode.ReuseOn}
	var bs nbody.BlockStepper
	cfg := nbody.BlockConfig{DT: 0.02, MaxRung: 6}
	const stepsPerOp = 2
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			check2(b, bs.Run(bsys2, bf, cfg, stepsPerOp))
		}
	})
	out = append(out, Entry{
		Name:        fmt.Sprintf("treecode/reuse/blockstep/n=%d", n),
		NsPerOp:     float64(r.NsPerOp()) / stepsPerOp,
		AllocsPerOp: r.AllocsPerOp(),
		Metrics: map[string]float64{
			"max_rung_used": float64(bs.Stats.MaxRungUsed),
		},
	})
	return out
}

// blockStepEps is the softening of the block-timestep benchmark
// system. The default 0.01 keeps an equal-mass Plummer sphere nearly
// single-scale (at n=20000 per-particle masses are tiny, so even close
// pairs never accelerate hard and everyone lands on the same rung);
// 0.001 lets close encounters reach the fine rungs while the halo
// stays coarse — the multi-scale regime hierarchical timesteps exist
// for. The exact baseline runs the same system: per-step force cost is
// independent of eps, so the comparison prices identical physics.
const blockStepEps = 0.001

// blockStepEntries benchmarks hierarchical block timesteps over the
// default dual-tree engine: ns per base step at n=20000 (the perf side
// the ≥3x combined-speedup guard divides into the exact baseline), and
// the energy drift of 100 base steps at n=4096 (the accuracy side).
func blockStepEntries() []Entry {
	const (
		n          = 20000
		stepsPerOp = 2
	)
	sys := nbody.NewPlummer(n, 1, 2001)
	sys.Eps = blockStepEps
	f := &treecode.Forcer{Theta: 0.7, Workers: runtime.GOMAXPROCS(0), Reuse: treecode.ReuseOff}
	var bs nbody.BlockStepper
	cfg := nbody.BlockConfig{DT: 0.02, MaxRung: 6}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			check2(b, bs.Run(sys, f, cfg, stepsPerOp))
		}
	})
	st := bs.Stats
	out := []Entry{{
		Name:        fmt.Sprintf("treecode/blockstep/n=%d", n),
		NsPerOp:     float64(r.NsPerOp()) / stepsPerOp,
		AllocsPerOp: r.AllocsPerOp(),
		Metrics: map[string]float64{
			"max_rung_used": float64(st.MaxRungUsed),
			"updates":       float64(st.Updates),
			"saved":         float64(st.Saved),
		},
	}}

	es := nbody.NewPlummer(4096, 1, 2001)
	k0, p0 := es.Energy()
	var eb nbody.BlockStepper
	ef := &treecode.Forcer{Theta: 0.7, Workers: runtime.GOMAXPROCS(0), Reuse: treecode.ReuseOff}
	t0 := time.Now()
	check(eb.Run(es, ef, nbody.BlockConfig{DT: 0.01, MaxRung: 4}, 100))
	wall := time.Since(t0)
	k1, p1 := es.Energy()
	drift := math.Abs((k1 + p1 - k0 - p0) / (k0 + p0))
	out = append(out, Entry{
		Name:    "treecode/blockstep/energy/n=4096",
		NsPerOp: float64(wall.Nanoseconds()) / 100,
		Metrics: map[string]float64{
			"energy_drift":  drift,
			"max_rung_used": float64(eb.Stats.MaxRungUsed),
		},
	})
	return out
}

// forceEngineEntries benchmarks the force-evaluation engines head to
// head on a prebuilt tree, single-threaded: one op is a full force
// sweep over every particle. The recursive walk is the golden
// baseline; the bit-identical list engine must match it (zero
// allocations, no throughput regression beyond noise), and the
// group-walk engine — where the interaction-list architecture pays,
// by amortizing one traversal over a whole target group — carries the
// ≥1.5x single-thread throughput guard.
func forceEngineEntries() []Entry {
	const n = 20000
	sys := nbody.NewPlummer(n, 1, 2001)
	tr, err := treecode.Build(treecode.SourcesFromSystem(sys), treecode.BuildOptions{})
	check(err)
	var out []Entry

	// Direct-summation reference accelerations for the per-engine RMS
	// force errors (G = 1 for Plummer systems, so raw engine output is
	// directly comparable).
	ref := nbody.NewPlummer(n, 1, 2001)
	ref.DirectForces()
	rmsError := func() float64 {
		var sum float64
		for i := 0; i < n; i++ {
			dx := sys.AX[i] - ref.AX[i]
			dy := sys.AY[i] - ref.AY[i]
			dz := sys.AZ[i] - ref.AZ[i]
			den := ref.AX[i]*ref.AX[i] + ref.AY[i]*ref.AY[i] + ref.AZ[i]*ref.AZ[i]
			sum += (dx*dx + dy*dy + dz*dz) / den
		}
		return math.Sqrt(sum / float64(n))
	}

	var st treecode.Stats
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				ax, ay, az := tr.ForceAtRecursive(sys.X[j], sys.Y[j], sys.Z[j], j, 0.7, sys.Eps, &st)
				sys.AX[j], sys.AY[j], sys.AZ[j] = ax, ay, az
			}
		}
	})
	out = append(out, Entry{
		Name:        fmt.Sprintf("force/recursive/n=%d", n),
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		Metrics:     map[string]float64{"rms_error": rmsError()},
	})

	ar := treecode.NewWalkArena()
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		// Warm the arena to its high-water capacity, then measure the
		// allocation-free steady state.
		for j := 0; j < n; j++ {
			tr.ForceAtList(sys.X[j], sys.Y[j], sys.Z[j], j, 0.7, sys.Eps, &st, ar)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				ax, ay, az := tr.ForceAtList(sys.X[j], sys.Y[j], sys.Z[j], j, 0.7, sys.Eps, &st, ar)
				sys.AX[j], sys.AY[j], sys.AZ[j] = ax, ay, az
			}
		}
	})
	out = append(out, Entry{
		Name:        fmt.Sprintf("force/list/n=%d", n),
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
	})

	groups := tr.AppendGroups(nil, treecode.DefaultGroupSize)
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for _, li := range groups {
			tr.GroupForceLeaf(li, 0.7, sys.Eps, ar, &st)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, li := range groups {
				tr.GroupForceLeaf(li, 0.7, sys.Eps, ar, &st)
				for k := 0; k < ar.NumTargets(); k++ {
					j, ax, ay, az := ar.Target(k)
					sys.AX[j], sys.AY[j], sys.AZ[j] = ax, ay, az
				}
			}
		}
	})
	out = append(out, Entry{
		Name:        fmt.Sprintf("force/groupwalk/n=%d", n),
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		Metrics:     map[string]float64{"rms_error": rmsError()},
	})

	// The dual-tree engine: mutual traversal over coarse target tasks,
	// refined to group frames — the new default, guarded to at least
	// match the recursive walk's accuracy with zero steady-state
	// allocations.
	tasks := tr.AppendGroups(nil, treecode.DualTaskSize)
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for _, ti := range tasks {
			tr.DualForceWalk(ti, 0.7, sys.Eps, treecode.DefaultGroupSize, nil, ar, &st)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, ti := range tasks {
				tr.DualForceWalk(ti, 0.7, sys.Eps, treecode.DefaultGroupSize, nil, ar, &st)
				for k := 0; k < ar.NumTargets(); k++ {
					j, ax, ay, az := ar.Target(k)
					sys.AX[j], sys.AY[j], sys.AZ[j] = ax, ay, az
				}
			}
		}
	})
	out = append(out, Entry{
		Name:        fmt.Sprintf("force/dual/n=%d", n),
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		Metrics:     map[string]float64{"rms_error": rmsError()},
	})
	return out
}

// hostParallelEntries benchmarks the internal/par execution layer —
// tree build and treecode forces, serial versus the full worker pool —
// mirroring BenchmarkHostParallel in bench_test.go.
func hostParallelEntries() []Entry {
	const n = 30000
	sys := nbody.NewPlummer(n, 1, 2001)
	srcs := treecode.SourcesFromSystem(sys)
	widths := []int{1}
	if g := runtime.GOMAXPROCS(0); g > 1 {
		widths = append(widths, g)
	}
	var out []Entry
	for _, wkr := range widths {
		wkr := wkr
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := treecode.Build(srcs, treecode.BuildOptions{Workers: wkr})
				check2(b, err)
			}
		})
		out = append(out, Entry{
			Name:        fmt.Sprintf("hostparallel/treebuild/workers=%d", wkr),
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fsys := nbody.NewPlummer(n, 1, 2001)
		f := &treecode.Forcer{Theta: 0.7, Workers: wkr, Reuse: treecode.ReuseOff}
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				check2(b, f.Forces(fsys))
			}
		})
		out = append(out, Entry{
			Name:        fmt.Sprintf("hostparallel/treeforces/workers=%d", wkr),
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return out
}

// mpiEntries benchmarks the MPI substrate's allreduce hot path: one op
// is a full 8-rank in-place allreduce of 512 float64s, with the buffer
// pools on (the shipping configuration) and off (the baseline the
// zero-alloc messaging is measured against). Allocations anywhere in
// the world's rank goroutines count: testing.Benchmark reads the
// process-wide allocator statistics.
func mpiEntries() []Entry {
	var out []Entry
	for _, disable := range []bool{false, true} {
		name := "mpi/allreduce/pooled"
		if disable {
			name = "mpi/allreduce/unpooled"
		}
		var sim float64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			w, err := mpi.NewWorldWithConfig(8, mpi.Config{
				Fabric:       netsim.FastEthernet(),
				DisablePool:  disable,
				ChannelDepth: 256,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			err = w.Run(func(c *mpi.Comm) error {
				buf := make([]float64, 512)
				for i := 0; i < b.N; i++ {
					buf[0] = float64(c.Rank() + i)
					c.AllreduceInto(mpi.Sum, buf)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			sim = w.MaxTime()
		})
		out = append(out, Entry{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			Metrics:     map[string]float64{"sim_seconds": sim},
		})
	}
	return out
}

// largePEntries prices the event scheduler's reason to exist: a p=4096
// class-S EP world must complete in event mode with at least 10x fewer
// host goroutines and less live heap than the goroutine scheduler would
// need, extrapolated from a measured p=256 goroutine-mode run
// (goroutines grow linearly in p, the per-pair channel matrix
// quadratically — the extrapolation even underprices the goroutine path
// by using a shallow ChannelDepth). The big run doubles as a
// determinism probe: two fresh event worlds must produce bit-identical
// makespans and checksums.
func largePEntries() []Entry {
	const (
		pBig      = 4096
		pBase     = 256
		baseDepth = 8 // far below the sweep's 256: biases the guard against us
	)
	costs, err := cpu.CalibrateFor(cpu.NewTM5600(), cpu.MissRateClassW)
	check(err)

	liveHeap := func() int64 {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return int64(m.HeapAlloc)
	}
	// peakGoroutines samples runtime.NumGoroutine while fn runs. The
	// sampler adds one goroutine to both measurements, so the bias
	// cancels out of the ratio.
	peakGoroutines := func(fn func()) int {
		stop := make(chan struct{})
		done := make(chan struct{})
		peak := 0
		go func() {
			defer close(done)
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				if g := runtime.NumGoroutine(); g > peak {
					peak = g
				}
				select {
				case <-stop:
					return
				case <-tick.C:
				}
			}
		}()
		fn()
		close(stop)
		<-done
		return peak
	}

	// The goroutine-scheduler footprint, measured at the largest size
	// that is still comfortable to instantiate for real.
	h0 := liveHeap()
	g0 := runtime.NumGoroutine()
	wBase, err := mpi.NewWorldWithConfig(pBase, mpi.Config{
		Fabric: netsim.FastEthernet(), ChannelDepth: baseDepth,
	})
	check(err)
	var resBase *nas.ParallelResult
	t0 := time.Now()
	gorBasePeak := peakGoroutines(func() {
		resBase, err = nas.ParallelEP(wBase, nas.ClassS, costs)
	})
	check(err)
	wallBase := time.Since(t0)
	heapBase := liveHeap() - h0
	gorBase := gorBasePeak - g0
	runtime.KeepAlive(wBase)
	wBase = nil

	scale := float64(pBig) / float64(pBase)
	gorExtrap := float64(gorBase) * scale
	heapExtrap := float64(heapBase) * scale * scale

	// The event-scheduler run at the real target size.
	h0 = liveHeap()
	g0 = runtime.NumGoroutine()
	mkEvent := func() *mpi.World {
		w, err := mpi.NewWorldWithConfig(pBig, mpi.Config{
			Fabric: netsim.FastEthernet(), Event: true,
		})
		check(err)
		return w
	}
	wEvent := mkEvent()
	var resEvent *nas.ParallelResult
	t0 = time.Now()
	gorEventPeak := peakGoroutines(func() {
		resEvent, err = nas.ParallelEP(wEvent, nas.ClassS, costs)
	})
	check(err)
	wallEvent := time.Since(t0)
	heapEvent := liveHeap() - h0
	gorEvent := gorEventPeak - g0
	if gorEvent < 1 {
		gorEvent = 1 // the event loop runs in the caller's goroutine
	}
	runtime.KeepAlive(wEvent)

	// Determinism probe: a second fresh world must reproduce the run
	// bit for bit.
	res2, err := nas.ParallelEP(mkEvent(), nas.ClassS, costs)
	check(err)
	deterministic := 0.0
	if math.Float64bits(resEvent.SimTime) == math.Float64bits(res2.SimTime) &&
		math.Float64bits(resEvent.Checksum) == math.Float64bits(res2.Checksum) {
		deterministic = 1.0
	}
	verified := 0.0
	if resEvent.Verified {
		verified = 1.0
	}

	return []Entry{
		{
			Name:    fmt.Sprintf("mpi/largep/ep-base/p=%d", pBase),
			NsPerOp: float64(wallBase.Nanoseconds()),
			Metrics: map[string]float64{
				"ranks":           pBase,
				"sim_seconds":     resBase.SimTime,
				"goroutines_peak": float64(gorBase),
				"heap_live_bytes": float64(heapBase),
			},
		},
		{
			Name:    "mpi/largep/ep",
			NsPerOp: float64(wallEvent.Nanoseconds()),
			Metrics: map[string]float64{
				"ranks":                   pBig,
				"sim_seconds":             resEvent.SimTime,
				"verified":                verified,
				"deterministic":           deterministic,
				"goroutines_event":        float64(gorEvent),
				"goroutines_extrapolated": gorExtrap,
				"goroutine_ratio":         gorExtrap / float64(gorEvent),
				"heap_event_bytes":        float64(heapEvent),
				"heap_extrapolated_bytes": heapExtrap,
			},
		},
	}
}

// sweepEntries times the parallel NAS rank sweep (p = 1..8, class S)
// serially, concurrently, and on the event scheduler. The simulated
// makespan sum is a pure function of the sweep's programs, so it
// doubles as the determinism fingerprint the guard compares exactly —
// across host scheduling and across rank schedulers.
func sweepEntries() []Entry {
	var out []Entry
	for _, variant := range []string{"serial", "concurrent", "event"} {
		name := "sweep/nas/" + variant
		cfg := core.DefaultNASSweepConfig()
		cfg.Ranks = cfg.Ranks[:8]
		cfg.Concurrent = variant != "serial"
		if variant == "event" {
			cfg.Mode = "event"
		}
		t0 := time.Now()
		rows, _, err := core.NewRun().NASSweep(cfg)
		check(err)
		wall := time.Since(t0)
		var simSum float64
		for _, row := range rows {
			simSum += row.EPTime + row.ISTime
		}
		out = append(out, Entry{
			Name:    name,
			NsPerOp: float64(wall.Nanoseconds()),
			Metrics: map[string]float64{"sim_makespan_sum": simSum},
		})
	}
	return out
}

// designoptEntries benchmarks the ToPPeR design-space optimizer:
// default-grid sweep throughput with the memo on (the production
// configuration), the memo's speedup on a fabric-heavy grid (six
// fabrics, node counts to 1024 — the regime where the O(p) network
// solve dominates a candidate's cost), the zero-allocation steady
// state of the candidate evaluator, and the frontier's determinism
// across worker counts and pruning.
func designoptEntries() []Entry {
	var out []Entry

	// Default grid, exhaustively enumerated (NoPrune) so candidates/sec
	// and the memo hit rate measure the evaluator, not the prune rate.
	g := designopt.DefaultGrid()
	var res *designopt.Result
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			res, err = designopt.Optimize(g, designopt.Options{NoPrune: true})
			check2(b, err)
		}
	})
	out = append(out, Entry{
		Name:    "designopt/sweep/default",
		NsPerOp: float64(r.NsPerOp()),
		Metrics: map[string]float64{
			"candidates":         float64(res.Candidates),
			"candidates_per_sec": float64(res.Candidates) / (float64(r.NsPerOp()) / 1e9),
			"memo_hit_rate":      res.MemoHitRate(),
			"frontier_size":      float64(len(res.Frontier)),
		},
	})

	// The memo's reason to exist, priced on a fabric-heavy grid. Both
	// sides enumerate exhaustively so they do identical candidate work;
	// only the network-solve caching differs.
	heavy := designopt.DefaultGrid()
	heavy.Fabrics = heavy.Fabrics[:0]
	for _, name := range []string{"fe", "ge", "fe-fattree", "ge-fattree", "ge-torus2d", "ge-torus3d"} {
		f, err := designopt.ParseFabric(name)
		check(err)
		heavy.Fabrics = append(heavy.Fabrics, f)
	}
	heavy.Nodes = []int{64, 128, 256, 512, 1024}
	for _, noMemo := range []bool{false, true} {
		name := "designopt/sweep/memo=on"
		if noMemo {
			name = "designopt/sweep/memo=off"
		}
		var hres *designopt.Result
		hr := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				hres, err = designopt.Optimize(heavy, designopt.Options{NoPrune: true, NoMemo: noMemo})
				check2(b, err)
			}
		})
		out = append(out, Entry{
			Name:    name,
			NsPerOp: float64(hr.NsPerOp()),
			Metrics: map[string]float64{
				"candidates":    float64(hres.Candidates),
				"memo_hit_rate": hres.MemoHitRate(),
				"frontier_size": float64(len(hres.Frontier)),
			},
		})
	}

	// The steady-state inner loop: with every memo cell warm, scoring a
	// candidate must allocate nothing.
	mg := designopt.DefaultGrid()
	memo := designopt.NewMemo(mg)
	ev := designopt.NewEvaluator(mg, memo)
	na, nn, nf := len(mg.Ambients), len(mg.Nodes), len(mg.Fabrics)
	var pt designopt.Point
	for fi := 0; fi < nf; fi++ {
		for ni := 0; ni < nn; ni++ {
			ev.Eval(0, 0, fi, ni, 0, &pt)
		}
	}
	i := 0
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for k := 0; k < b.N; k++ {
			ev.Eval(i%len(mg.CPUs), (i/len(mg.CPUs))%len(mg.Packs), i%nf, i%nn, i%na, &pt)
			i++
		}
	})
	out = append(out, Entry{
		Name:        "designopt/eval",
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
	})

	// Determinism fingerprint: the pruned frontier at 1, 2 and 8 workers
	// must equal the exhaustive frontier bit for bit.
	dg := designopt.DefaultGrid()
	exhaustive, err := designopt.Optimize(dg, designopt.Options{NoPrune: true})
	check(err)
	want := designopt.Fingerprint(exhaustive.Frontier)
	deterministic := 1.0
	t0 := time.Now()
	for _, workers := range []int{1, 2, 8} {
		pr, err := designopt.Optimize(dg, designopt.Options{Workers: workers})
		check(err)
		if designopt.Fingerprint(pr.Frontier) != want {
			deterministic = 0
		}
	}
	out = append(out, Entry{
		Name:    "designopt/frontier/deterministic",
		NsPerOp: float64(time.Since(t0).Nanoseconds()) / 3,
		Metrics: map[string]float64{
			"deterministic": deterministic,
			"frontier_size": float64(len(exhaustive.Frontier)),
		},
	})
	return out
}

func check2(b *testing.B, err error) {
	if err != nil {
		b.Fatal(err)
	}
}

func find(rep *Report, name string) *Entry {
	return rep.Find(name)
}

// guardReport applies the in-run regression checks.
func guardReport(rep *Report) error {
	// Deterministic: with gears on, the simulated machine must never get
	// slower (exact — cycle counts don't depend on the host).
	for _, variant := range []kernels.GravVariant{kernels.GravMath, kernels.GravKarp} {
		off := find(rep, fmt.Sprintf("gravmicro/%s/gears=false", variant))
		on := find(rep, fmt.Sprintf("gravmicro/%s/gears=true", variant))
		if off == nil || on == nil {
			return fmt.Errorf("guard: missing gravmicro entries for %s", variant)
		}
		if on.Metrics["sim_cycles"] >= off.Metrics["sim_cycles"] {
			return fmt.Errorf("guard: gears raised simulated cycles on %s: %.0f → %.0f",
				variant, off.Metrics["sim_cycles"], on.Metrics["sim_cycles"])
		}
	}
	// The interaction-list engine's bars. The group-walk mode — where
	// the list architecture amortizes one traversal over a whole target
	// group — must deliver ≥1.5x single-thread force throughput over the
	// recursive walk. The default per-particle list engine's wins are
	// bit-exactness and allocation-free arenas, not raw single-thread
	// speed (a fused recursion evaluates while it walks; a per-particle
	// list pays for its appends), so its bars are the alloc count and
	// the group engine it feeds, not a ratio of its own.
	recEntry := find(rep, "force/recursive/n=20000")
	listEntry := find(rep, "force/list/n=20000")
	grpEntry := find(rep, "force/groupwalk/n=20000")
	if recEntry == nil || listEntry == nil || grpEntry == nil {
		return fmt.Errorf("guard: missing force engine entries")
	}
	if recEntry.NsPerOp < 1.5*grpEntry.NsPerOp {
		return fmt.Errorf("guard: group-walk engine under 1.5x recursive throughput: %.0f vs %.0f ns/op (%.2fx)",
			grpEntry.NsPerOp, recEntry.NsPerOp, recEntry.NsPerOp/grpEntry.NsPerOp)
	}
	if listEntry.AllocsPerOp != 0 {
		return fmt.Errorf("guard: list engine force sweep allocates: %d allocs/op, want 0",
			listEntry.AllocsPerOp)
	}
	if grpEntry.AllocsPerOp != 0 {
		return fmt.Errorf("guard: group-walk force sweep allocates: %d allocs/op, want 0",
			grpEntry.AllocsPerOp)
	}
	// The dual-tree engine's bars: allocation-free steady state and at
	// least the recursive walk's accuracy (mutual acceptance is
	// conservative relative to the per-particle MAC, so dual must never
	// be the least accurate engine).
	dualEntry := find(rep, "force/dual/n=20000")
	if dualEntry == nil {
		return fmt.Errorf("guard: missing force/dual entry")
	}
	if dualEntry.AllocsPerOp != 0 {
		return fmt.Errorf("guard: dual-tree force sweep allocates: %d allocs/op, want 0",
			dualEntry.AllocsPerOp)
	}
	if dualEntry.Metrics["rms_error"] > recEntry.Metrics["rms_error"] {
		return fmt.Errorf("guard: dual-tree RMS force error %.3e exceeds recursive %.3e",
			dualEntry.Metrics["rms_error"], recEntry.Metrics["rms_error"])
	}
	// The PR 6 headline: dual-tree traversal plus hierarchical block
	// timesteps must deliver ≥3x the PR 5 default per unit of simulated
	// time. The exact baseline steps every particle at the finest
	// occupied dt, paying one list-engine force step per tick — 2^rung
	// of them per base step; the block integrator covers the same base
	// step in NsPerOp.
	exact := find(rep, "treecode/step-exact/n=20000")
	blk := find(rep, "treecode/blockstep/n=20000")
	if exact == nil || blk == nil {
		return fmt.Errorf("guard: missing treecode/step-exact or treecode/blockstep entry")
	}
	ticks := math.Pow(2, blk.Metrics["max_rung_used"])
	combined := exact.NsPerOp * ticks / blk.NsPerOp
	if combined < 3.0 {
		return fmt.Errorf("guard: dual+block engine only %.2fx the exact uniform baseline (want ≥3x): %.0f ns × %g ticks vs %.0f ns per base step",
			combined, exact.NsPerOp, ticks, blk.NsPerOp)
	}
	// The tree maintainer's bars. Structural head-to-head, single
	// worker, identical drift sequences: maintaining the warm cache must
	// beat a fresh build at least 1.3x (measured ~2.8x — the sort and
	// node partitioning are what a step's tiny drift lets it skip), and
	// the steady state must not allocate (exact — the arena,
	// permutation and scratch buffers are all retained across steps).
	// End to end, a maintained tree is bit-identical to a fresh one, so
	// neither the reuse force step nor the reuse block hierarchy may
	// ever run slower than its fresh-build twin beyond noise — force
	// sweeps dominate both end-to-end paths, so the build savings
	// surface as a bounded win (~5% on the uniform step, ~15% on the
	// build-heavier block hierarchy), not a ratio worth pinning on a
	// shared host. The bit_identical metric is exact: a short leapfrog
	// with the maintainer on must reproduce the fresh path bit for bit.
	maintain := find(rep, "treecode/reuse/maintain/n=20000")
	maintainFresh := find(rep, "treecode/reuse/maintain-fresh/n=20000")
	reuseStep := find(rep, "treecode/reuse/step/n=20000")
	reuseBlk := find(rep, "treecode/reuse/blockstep/n=20000")
	if maintain == nil || maintainFresh == nil || reuseStep == nil || reuseBlk == nil {
		return fmt.Errorf("guard: missing treecode/reuse entries")
	}
	if maintainFresh.NsPerOp < 1.3*maintain.NsPerOp {
		return fmt.Errorf("guard: tree maintenance only %.2fx a fresh build (want ≥1.3x): %.0f vs %.0f ns/op",
			maintainFresh.NsPerOp/maintain.NsPerOp, maintain.NsPerOp, maintainFresh.NsPerOp)
	}
	if maintain.AllocsPerOp != 0 {
		return fmt.Errorf("guard: steady-state tree maintenance allocates: %d allocs/op, want 0",
			maintain.AllocsPerOp)
	}
	if reuseStep.Metrics["bit_identical"] != 1 {
		return fmt.Errorf("guard: reused trees are not bit-identical to fresh builds over a leapfrog")
	}
	stepEntry := find(rep, "treecode/step/n=20000")
	if stepEntry == nil {
		return fmt.Errorf("guard: missing treecode/step entry")
	}
	if reuseStep.NsPerOp > stepEntry.NsPerOp*slowdownTolerance {
		return fmt.Errorf("guard: reuse force step is >%.0f%% slower than the fresh-build step: %.0f vs %.0f ns/op",
			(slowdownTolerance-1)*100, reuseStep.NsPerOp, stepEntry.NsPerOp)
	}
	if reuseBlk.NsPerOp > blk.NsPerOp*slowdownTolerance {
		return fmt.Errorf("guard: reuse blockstep is >%.0f%% slower than the fresh-build blockstep: %.0f vs %.0f ns per base step",
			(slowdownTolerance-1)*100, reuseBlk.NsPerOp, blk.NsPerOp)
	}
	// Accuracy side of the same bargain: the hierarchy must not trade
	// away energy conservation.
	energy := find(rep, "treecode/blockstep/energy/n=4096")
	if energy == nil {
		return fmt.Errorf("guard: missing treecode/blockstep/energy entry")
	}
	if drift := energy.Metrics["energy_drift"]; drift > 1e-3 {
		return fmt.Errorf("guard: block-timestep energy drift %.3e over 100 base steps, want ≤ 1e-3", drift)
	}
	// Host-side, tolerance-based: the worker pool must not run slower
	// than serial beyond noise.
	g := rep.GOMAXPROCS
	if g > 1 {
		for _, kind := range []string{"treebuild", "treeforces"} {
			serial := find(rep, fmt.Sprintf("hostparallel/%s/workers=1", kind))
			wide := find(rep, fmt.Sprintf("hostparallel/%s/workers=%d", kind, g))
			if serial == nil || wide == nil {
				return fmt.Errorf("guard: missing hostparallel/%s entries", kind)
			}
			if wide.NsPerOp > serial.NsPerOp*slowdownTolerance {
				return fmt.Errorf("guard: hostparallel/%s at %d workers is >%.0f%% slower than serial: %.0f vs %.0f ns/op",
					kind, g, (slowdownTolerance-1)*100, wide.NsPerOp, serial.NsPerOp)
			}
		}
	}
	// The zero-alloc messaging bar: pooling must cut the allreduce hot
	// path's allocation rate at least 5x (exact — the allocator count is
	// deterministic at steady state) and must not cost host time.
	pooled := find(rep, "mpi/allreduce/pooled")
	unpooled := find(rep, "mpi/allreduce/unpooled")
	if pooled == nil || unpooled == nil {
		return fmt.Errorf("guard: missing mpi/allreduce entries")
	}
	if 5*(pooled.AllocsPerOp+1) > unpooled.AllocsPerOp {
		return fmt.Errorf("guard: pooling cut allreduce allocations less than 5x: %d vs %d allocs/op",
			pooled.AllocsPerOp, unpooled.AllocsPerOp)
	}
	if pooled.NsPerOp > unpooled.NsPerOp*slowdownTolerance {
		return fmt.Errorf("guard: pooled allreduce is >%.0f%% slower than unpooled: %.0f vs %.0f ns/op",
			(slowdownTolerance-1)*100, pooled.NsPerOp, unpooled.NsPerOp)
	}
	// Sweep determinism, exact: the concurrent sweep must simulate the
	// same cluster bit-for-bit (the makespans are virtual time, not host
	// time). Host-side, the concurrent sweep must not lose to serial.
	serialSweep := find(rep, "sweep/nas/serial")
	concSweep := find(rep, "sweep/nas/concurrent")
	if serialSweep == nil || concSweep == nil {
		return fmt.Errorf("guard: missing sweep/nas entries")
	}
	if serialSweep.Metrics["sim_makespan_sum"] != concSweep.Metrics["sim_makespan_sum"] {
		return fmt.Errorf("guard: concurrent sweep changed simulated makespans: %g vs %g",
			concSweep.Metrics["sim_makespan_sum"], serialSweep.Metrics["sim_makespan_sum"])
	}
	if g > 1 && concSweep.NsPerOp > serialSweep.NsPerOp*slowdownTolerance {
		return fmt.Errorf("guard: concurrent sweep is >%.0f%% slower than serial: %.0f vs %.0f ns",
			(slowdownTolerance-1)*100, concSweep.NsPerOp, serialSweep.NsPerOp)
	}
	// Scheduler determinism, exact: the event scheduler must simulate
	// the same cluster as the goroutine scheduler, bit for bit.
	eventSweep := find(rep, "sweep/nas/event")
	if eventSweep == nil {
		return fmt.Errorf("guard: missing sweep/nas/event entry")
	}
	if eventSweep.Metrics["sim_makespan_sum"] != serialSweep.Metrics["sim_makespan_sum"] {
		return fmt.Errorf("guard: event sweep changed simulated makespans: %g vs %g",
			eventSweep.Metrics["sim_makespan_sum"], serialSweep.Metrics["sim_makespan_sum"])
	}
	// The large-p event core's bars: the p=4096 EP run must verify,
	// reproduce bit-for-bit across fresh worlds, use ≥10x fewer host
	// goroutines than the goroutine scheduler extrapolates to, and hold
	// less live heap than the goroutine path's channel matrix would.
	largep := find(rep, "mpi/largep/ep")
	if largep == nil {
		return fmt.Errorf("guard: missing mpi/largep/ep entry")
	}
	if largep.Metrics["verified"] != 1 {
		return fmt.Errorf("guard: p=%g event-mode EP did not verify", largep.Metrics["ranks"])
	}
	if largep.Metrics["deterministic"] != 1 {
		return fmt.Errorf("guard: p=%g event-mode EP is not bit-deterministic across fresh worlds",
			largep.Metrics["ranks"])
	}
	if ratio := largep.Metrics["goroutine_ratio"]; ratio < 10 {
		return fmt.Errorf("guard: event core only %.1fx fewer goroutines than the goroutine path at p=%g (want ≥10x): %g vs %g extrapolated",
			ratio, largep.Metrics["ranks"],
			largep.Metrics["goroutines_event"], largep.Metrics["goroutines_extrapolated"])
	}
	if largep.Metrics["heap_event_bytes"] >= largep.Metrics["heap_extrapolated_bytes"] {
		return fmt.Errorf("guard: event core live heap %.0f B at p=%g is not below the goroutine path's extrapolated %.0f B",
			largep.Metrics["heap_event_bytes"], largep.Metrics["ranks"],
			largep.Metrics["heap_extrapolated_bytes"])
	}
	// The design-space optimizer's bars: memoized sweep throughput of at
	// least 100k candidate evaluations per second, a ≥90% memo hit rate
	// on the default grid, a ≥10x memo speedup on the fabric-heavy grid
	// (exact same candidate work either side, only the caching differs),
	// an allocation-free steady-state evaluator, and a pruned frontier
	// bit-identical to exhaustive enumeration across worker counts.
	dflt := find(rep, "designopt/sweep/default")
	if dflt == nil {
		return fmt.Errorf("guard: missing designopt/sweep/default entry")
	}
	if cps := dflt.Metrics["candidates_per_sec"]; cps < 100_000 {
		return fmt.Errorf("guard: memoized design sweep at %.0f candidates/sec, want ≥100000", cps)
	}
	if hit := dflt.Metrics["memo_hit_rate"]; hit < 0.9 {
		return fmt.Errorf("guard: memo hit rate %.3f on the default grid, want ≥0.9", hit)
	}
	memoOn := find(rep, "designopt/sweep/memo=on")
	memoOff := find(rep, "designopt/sweep/memo=off")
	if memoOn == nil || memoOff == nil {
		return fmt.Errorf("guard: missing designopt/sweep/memo entries")
	}
	if memoOff.NsPerOp < 10*memoOn.NsPerOp {
		return fmt.Errorf("guard: memo speedup only %.1fx on the fabric-heavy grid (want ≥10x): %.0f vs %.0f ns/op",
			memoOff.NsPerOp/memoOn.NsPerOp, memoOff.NsPerOp, memoOn.NsPerOp)
	}
	evalEntry := find(rep, "designopt/eval")
	if evalEntry == nil {
		return fmt.Errorf("guard: missing designopt/eval entry")
	}
	if evalEntry.AllocsPerOp != 0 {
		return fmt.Errorf("guard: steady-state candidate evaluation allocates: %d allocs/op, want 0",
			evalEntry.AllocsPerOp)
	}
	detEntry := find(rep, "designopt/frontier/deterministic")
	if detEntry == nil {
		return fmt.Errorf("guard: missing designopt/frontier/deterministic entry")
	}
	if detEntry.Metrics["deterministic"] != 1 {
		return fmt.Errorf("guard: pruned frontier differs from exhaustive enumeration across worker counts")
	}
	return nil
}

// compareReports is the benchstat-style step: every hostparallel, mpi,
// serve (gateway), designopt (design-space optimizer) and
// treecode/reuse (tree maintainer) benchmark in the baseline must
// exist in the current report and must not have slowed down >10%. A
// guarded baseline entry missing from the new report is an error, not
// a skip — in particular a gateway baseline entry that gridload
// stopped emitting, or a maintainer entry that benchreport stopped
// emitting, fails here loudly. Only meaningful when both reports come
// from the same machine.
func compareReports(oldPath string, cur *Report) error {
	old, err := benchfmt.Read(oldPath)
	if err != nil {
		return err
	}
	compared := 0
	for i := range old.Results {
		o := &old.Results[i]
		if !strings.HasPrefix(o.Name, "hostparallel/") && !strings.HasPrefix(o.Name, "mpi/") &&
			!strings.HasPrefix(o.Name, "serve/") && !strings.HasPrefix(o.Name, "designopt/") &&
			!strings.HasPrefix(o.Name, "treecode/reuse/") {
			continue
		}
		n := find(cur, o.Name)
		if n == nil {
			// A baseline entry the comparison is supposed to police must
			// not vanish silently — renames and removals have to update
			// the baseline, or a regression could hide behind them.
			return fmt.Errorf("compare: baseline entry %q missing from the current report", o.Name)
		}
		if o.NsPerOp <= 0 {
			continue
		}
		compared++
		if n.NsPerOp > o.NsPerOp*slowdownTolerance {
			return fmt.Errorf("compare: %s slowed down %.1f%%: %.0f → %.0f ns/op",
				o.Name, 100*(n.NsPerOp/o.NsPerOp-1), o.NsPerOp, n.NsPerOp)
		}
	}
	if compared == 0 {
		return fmt.Errorf("compare: no hostparallel/mpi/serve/designopt benchmarks in common with %s", oldPath)
	}
	return nil
}
