package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

func writeBaseline(t *testing.T, entries []Entry) string {
	t.Helper()
	rep := Report{Schema: benchfmt.Schema, Results: entries}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareFailsOnMissingGatewayEntry pins the loud-failure contract:
// a serve/ (gateway) baseline entry that the current report no longer
// contains is an error naming the entry, never a silent skip.
func TestCompareFailsOnMissingGatewayEntry(t *testing.T) {
	path := writeBaseline(t, []Entry{
		{Name: "serve/submit/cached", NsPerOp: 100},
		{Name: "mpi/allreduce/pooled", NsPerOp: 100},
	})
	cur := &Report{Results: []Entry{{Name: "mpi/allreduce/pooled", NsPerOp: 100}}}
	err := compareReports(path, cur)
	if err == nil || !strings.Contains(err.Error(), "serve/submit/cached") {
		t.Fatalf("missing gateway baseline entry not reported: %v", err)
	}
}

// TestCompareFailsOnMissingDesignoptEntry: the design-space optimizer's
// benchmarks are policed the same way — a designopt/ baseline entry
// missing from the current report fails loudly.
func TestCompareFailsOnMissingDesignoptEntry(t *testing.T) {
	path := writeBaseline(t, []Entry{
		{Name: "designopt/sweep/default", NsPerOp: 100},
		{Name: "mpi/allreduce/pooled", NsPerOp: 100},
	})
	cur := &Report{Results: []Entry{{Name: "mpi/allreduce/pooled", NsPerOp: 100}}}
	err := compareReports(path, cur)
	if err == nil || !strings.Contains(err.Error(), "designopt/sweep/default") {
		t.Fatalf("missing designopt baseline entry not reported: %v", err)
	}
}

// TestCompareFailsOnMissingReuseEntry: the tree maintainer's benchmarks
// are policed too — a treecode/reuse/ baseline entry missing from the
// current report fails loudly.
func TestCompareFailsOnMissingReuseEntry(t *testing.T) {
	path := writeBaseline(t, []Entry{
		{Name: "treecode/reuse/maintain/n=20000", NsPerOp: 100},
		{Name: "mpi/allreduce/pooled", NsPerOp: 100},
	})
	cur := &Report{Results: []Entry{{Name: "mpi/allreduce/pooled", NsPerOp: 100}}}
	err := compareReports(path, cur)
	if err == nil || !strings.Contains(err.Error(), "treecode/reuse/maintain/n=20000") {
		t.Fatalf("missing tree-maintainer baseline entry not reported: %v", err)
	}
}

func TestCompareGuardsAllPolicedPrefixes(t *testing.T) {
	base := []Entry{
		{Name: "hostparallel/treebuild/workers=1", NsPerOp: 100},
		{Name: "mpi/allreduce/pooled", NsPerOp: 100},
		{Name: "serve/submit/cached", NsPerOp: 100},
		{Name: "designopt/sweep/default", NsPerOp: 100},
		{Name: "treecode/reuse/maintain/n=20000", NsPerOp: 100},
		{Name: "gravmicro/unguarded", NsPerOp: 100},   // not policed
		{Name: "treecode/step/n=20000", NsPerOp: 100}, // fresh-build entries stay unpoliced
	}
	path := writeBaseline(t, base)

	ok := &Report{Results: []Entry{
		{Name: "hostparallel/treebuild/workers=1", NsPerOp: 105},
		{Name: "mpi/allreduce/pooled", NsPerOp: 100},
		{Name: "serve/submit/cached", NsPerOp: 109},
		{Name: "designopt/sweep/default", NsPerOp: 102},
		{Name: "treecode/reuse/maintain/n=20000", NsPerOp: 104},
	}}
	if err := compareReports(path, ok); err != nil {
		t.Fatalf("within-tolerance report failed: %v", err)
	}

	for _, name := range []string{"hostparallel/treebuild/workers=1", "mpi/allreduce/pooled", "serve/submit/cached", "designopt/sweep/default", "treecode/reuse/maintain/n=20000"} {
		cur := &Report{Results: make([]Entry, len(ok.Results))}
		copy(cur.Results, ok.Results)
		slow := cur.Find(name)
		slow.NsPerOp = 120
		err := compareReports(path, cur)
		if err == nil || !strings.Contains(err.Error(), name) {
			t.Fatalf("%s slowdown not reported: %v", name, err)
		}
	}
}
