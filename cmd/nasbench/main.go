// Command nasbench runs the NAS Parallel Benchmark kernels, verifies
// them, and rates them on the paper's four processors.
//
// Usage:
//
//	nasbench                    # all kernels, class S
//	nasbench -class W           # the paper's Table 3 size
//	nasbench -kernel EP -class W
//	nasbench -class W -obs-json nas.json
//	nasbench -sweep             # parallel EP/IS rank sweep, p=1..24
//	nasbench -sweep -ranks 8    # sweep p=1..8
//	nasbench -sweep -ranks 64,256,1024 -ep-only  # large-p list sweep
//	nasbench -sweep -serial     # same sweep, one world at a time
//	nasbench -ranks 1024 -fabric torus2d         # one distributed run
//
// The -sweep mode runs the distributed EP and IS kernels at every rank
// count on the simulated cluster. -ranks takes either a single count N
// (sweeping p=1..N) or a comma-separated list of exact counts
// ("64,256,1024,4096"). Without -sweep, a -ranks value runs the
// distributed kernels once at that single world size. The sweep's
// worlds are independent, so they execute concurrently on the host
// pool (bounded by -procs); -serial disables that, producing
// bit-identical rows either way. -native selects the native collective
// algorithms and -contention the per-port fabric occupancy model (both
// change simulated times and are off by default). -fabric picks the
// interconnect topology (star, fattree, torus2d, torus3d) and
// -mpi-mode the rank scheduler (auto, goroutine, event): shaped
// fabrics use topology-aware hop counts and hierarchical collectives,
// and the event scheduler runs 10k+ simulated ranks without goroutine
// or channel cost. Results are bit-identical across schedulers.
//
// The flags are a thin parse layer over core.NASKernelsSpec and
// core.NASSweepSpec — the same experiment specs the gridd gateway
// accepts as JSON.
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// parseRanks turns a -ranks value into the sweep's rank list: a single
// count N means 1..N, a comma-separated list means exactly those.
func parseRanks(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) == 1 {
		n, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("bad -ranks value %q: %v", s, err)
		}
		if n <= 0 {
			return nil, nil
		}
		out := make([]int, n)
		for i := range out {
			out[i] = i + 1
		}
		return out, nil
	}
	var out []int
	for _, part := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -ranks entry %q in %q", part, s)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	d := core.NewDriver("nasbench")
	kernel := flag.String("kernel", "", "run one kernel (BT, SP, LU, MG, EP, IS, CG); empty = all")
	class := flag.String("class", "S", "problem class (S, W, A)")
	rate := flag.Bool("rate", true, "rate on the Table 3 processors")
	sweep := flag.Bool("sweep", false, "run the parallel EP/IS rank sweep instead of the serial kernel table")
	ranks := flag.String("ranks", "", "sweep rank counts: N for 1..N (default 24 with -sweep), or an exact comma-separated list; without -sweep, one distributed run at this world size")
	serial := flag.Bool("serial", false, "run the sweep's worlds one at a time instead of concurrently")
	native := flag.Bool("native", false, "sweep with native collectives (recursive doubling, pipelined ring)")
	contention := flag.Bool("contention", false, "sweep with the per-port fabric occupancy model")
	fabric := flag.String("fabric", "", "interconnect topology: star (default), fattree, torus2d, torus3d")
	mode := flag.String("mpi-mode", "", "rank scheduler: auto (default: event at >= 256 ranks), goroutine, event")
	epOnly := flag.Bool("ep-only", false, "sweep EP only (large-p sweeps: IS holds O(p²) live slices)")
	flag.Parse()
	d.Check(d.Setup())

	var spec core.ExperimentSpec
	if *sweep {
		if *ranks == "" {
			*ranks = "24"
		}
		list, err := parseRanks(*ranks)
		d.Check(err)
		spec = &core.NASSweepSpec{
			Class:      *class,
			Ranks:      list,
			Concurrent: !*serial,
			Native:     *native,
			Contention: *contention,
			EPOnly:     *epOnly,
			FabricModeSpec: core.FabricModeSpec{
				Fabric: *fabric,
				Mode:   *mode,
			},
		}
	} else {
		s := &core.NASKernelsSpec{
			Class: *class, Kernel: *kernel, Rate: rate,
			FabricModeSpec: core.FabricModeSpec{
				Fabric: *fabric,
				Mode:   *mode,
			},
		}
		if *ranks != "" {
			n, err := strconv.Atoi(*ranks)
			if err != nil {
				d.Check(fmt.Errorf("without -sweep, -ranks takes a single world size, got %q", *ranks))
			}
			s.Ranks = n
		}
		spec = s
	}
	_, err := d.RunSpec(spec)
	d.Check(err)
	d.Check(d.Finish())
}
