// Command nasbench runs the NAS Parallel Benchmark kernels, verifies
// them, and rates them on the paper's four processors.
//
// Usage:
//
//	nasbench                    # all kernels, class S
//	nasbench -class W           # the paper's Table 3 size
//	nasbench -kernel EP -class W
//	nasbench -class W -obs-json nas.json
//	nasbench -sweep             # parallel EP/IS rank sweep, p=1..24
//	nasbench -sweep -ranks 8    # sweep p=1..8
//	nasbench -sweep -serial     # same sweep, one world at a time
//
// The -sweep mode runs the distributed EP and IS kernels at every rank
// count on the simulated cluster. The sweep's worlds are independent, so
// they execute concurrently on the host pool (bounded by -procs);
// -serial disables that, producing bit-identical rows either way.
// -native selects the native collective algorithms and -contention the
// per-port fabric occupancy model (both change simulated times and are
// off by default).
package main

import (
	"fmt"
	"strings"
	"time"

	"flag"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/nas"
	"repro/internal/obs"
)

func main() {
	d := core.NewDriver("nasbench")
	kernel := flag.String("kernel", "", "run one kernel (BT, SP, LU, MG, EP, IS, CG); empty = all")
	class := flag.String("class", "S", "problem class (S, W, A)")
	rate := flag.Bool("rate", true, "rate on the Table 3 processors")
	sweep := flag.Bool("sweep", false, "run the parallel EP/IS rank sweep instead of the serial kernel table")
	ranks := flag.Int("ranks", 24, "sweep rank counts 1..N")
	serial := flag.Bool("serial", false, "run the sweep's worlds one at a time instead of concurrently")
	native := flag.Bool("native", false, "sweep with native collectives (recursive doubling, pipelined ring)")
	contention := flag.Bool("contention", false, "sweep with the per-port fabric occupancy model")
	flag.Parse()
	d.Check(d.Setup())
	snap := d.Run.Snap

	if *sweep {
		cfg := core.DefaultNASSweepConfig()
		cfg.Class = nas.Class((*class)[0])
		if *ranks > 0 {
			cfg.Ranks = cfg.Ranks[:0]
			for p := 1; p <= *ranks; p++ {
				cfg.Ranks = append(cfg.Ranks, p)
			}
		}
		cfg.Concurrent = !*serial
		cfg.Native = *native
		cfg.Contention = *contention
		_, t, err := d.Run.NASSweep(cfg)
		d.Check(err)
		d.Textf("%s\n", t)
		d.Check(d.Finish())
		return
	}

	var costs []cpu.EffCosts
	var procs []cpu.Processor
	if *rate {
		procs = cpu.NASCPUs()
		for _, p := range procs {
			// CalibrateFor is memoized process-wide, so re-rating more
			// kernels (or tables) shares one calibration per processor.
			e, err := cpu.CalibrateFor(p, cpu.MissRateClassW)
			d.Check(err)
			costs = append(costs, e)
		}
	}

	ks := nas.AllKernels()
	header := fmt.Sprintf("%-4s %-6s %-9s %-14s %-12s", "Code", "Class", "Verified", "Checksum", "Wall")
	for _, p := range procs {
		header += fmt.Sprintf(" %18s", shortName(p.Name()))
	}
	d.Textf("%s\n", header)
	for _, k := range ks {
		if *kernel != "" && !strings.EqualFold(k.Name(), *kernel) {
			continue
		}
		sp := d.Run.Tracer.Begin(obs.PidHost, 0, "nasbench", k.Name())
		t0 := time.Now()
		r, err := k.Run(nas.Class((*class)[0]))
		d.Check(err)
		wall := time.Since(t0)
		sp.End(map[string]any{"ops": r.Ops, "verified": r.Verified})
		kname := obs.SanitizeName(k.Name())
		snap.AddCounter("nasbench."+kname+".ops", "ops", "abstract operations executed", uint64(r.Ops))
		snap.AddTimer("nasbench."+kname+".wall", "host wall time running the kernel", wall.Seconds())
		if r.Verified {
			snap.AddCounter("nasbench.verified", "", "kernels passing verification", 1)
		}
		line := fmt.Sprintf("%-4s %-6s %-9v %-14.6g %-12v",
			r.Kernel, r.Class, r.Verified, r.Checksum, wall.Round(time.Millisecond))
		for i, p := range procs {
			m := costs[i].Mops(r.Ops, &r.Mix)
			line += fmt.Sprintf(" %15.1f Mops", m)
			snap.SetGauge("nasbench."+kname+"."+obs.SanitizeName(p.Name())+".mops", "Mops",
				"kernel rating, class "+string(nas.Class((*class)[0])), m)
		}
		d.Textf("%s\n", line)
	}
	d.Check(d.Finish())
}

func shortName(s string) string {
	fields := strings.Fields(s)
	if len(fields) > 2 {
		return strings.Join(fields[1:], " ")
	}
	return s
}
