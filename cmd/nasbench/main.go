// Command nasbench runs the NAS Parallel Benchmark kernels, verifies
// them, and rates them on the paper's four processors.
//
// Usage:
//
//	nasbench                    # all kernels, class S
//	nasbench -class W           # the paper's Table 3 size
//	nasbench -kernel EP -class W
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cpu"
	"repro/internal/nas"
)

func main() {
	kernel := flag.String("kernel", "", "run one kernel (BT, SP, LU, MG, EP, IS, CG); empty = all")
	class := flag.String("class", "S", "problem class (S, W, A)")
	rate := flag.Bool("rate", true, "rate on the Table 3 processors")
	flag.Parse()

	var costs []cpu.EffCosts
	var procs []cpu.Processor
	if *rate {
		procs = cpu.NASCPUs()
		for _, p := range procs {
			// CalibrateFor is memoized process-wide, so re-rating more
			// kernels (or tables) shares one calibration per processor.
			e, err := cpu.CalibrateFor(p, cpu.MissRateClassW)
			check(err)
			costs = append(costs, e)
		}
	}

	ks := nas.AllKernels()
	header := fmt.Sprintf("%-4s %-6s %-9s %-14s %-12s", "Code", "Class", "Verified", "Checksum", "Wall")
	for _, p := range procs {
		header += fmt.Sprintf(" %18s", shortName(p.Name()))
	}
	fmt.Println(header)
	for _, k := range ks {
		if *kernel != "" && !strings.EqualFold(k.Name(), *kernel) {
			continue
		}
		t0 := time.Now()
		r, err := k.Run(nas.Class((*class)[0]))
		check(err)
		line := fmt.Sprintf("%-4s %-6s %-9v %-14.6g %-12v",
			r.Kernel, r.Class, r.Verified, r.Checksum, time.Since(t0).Round(time.Millisecond))
		for i := range procs {
			line += fmt.Sprintf(" %15.1f Mops", costs[i].Mops(r.Ops, &r.Mix))
		}
		fmt.Println(line)
	}
}

func shortName(s string) string {
	fields := strings.Fields(s)
	if len(fields) > 2 {
		return strings.Join(fields[1:], " ")
	}
	return s
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nasbench:", err)
		os.Exit(1)
	}
}
