// Command nasbench runs the NAS Parallel Benchmark kernels, verifies
// them, and rates them on the paper's four processors.
//
// Usage:
//
//	nasbench                    # all kernels, class S
//	nasbench -class W           # the paper's Table 3 size
//	nasbench -kernel EP -class W
//	nasbench -class W -obs-json nas.json
//	nasbench -sweep             # parallel EP/IS rank sweep, p=1..24
//	nasbench -sweep -ranks 8    # sweep p=1..8
//	nasbench -sweep -serial     # same sweep, one world at a time
//
// The -sweep mode runs the distributed EP and IS kernels at every rank
// count on the simulated cluster. The sweep's worlds are independent, so
// they execute concurrently on the host pool (bounded by -procs);
// -serial disables that, producing bit-identical rows either way.
// -native selects the native collective algorithms and -contention the
// per-port fabric occupancy model (both change simulated times and are
// off by default).
//
// The flags are a thin parse layer over core.NASKernelsSpec and
// core.NASSweepSpec — the same experiment specs the gridd gateway
// accepts as JSON.
package main

import (
	"flag"

	"repro/internal/core"
)

func main() {
	d := core.NewDriver("nasbench")
	kernel := flag.String("kernel", "", "run one kernel (BT, SP, LU, MG, EP, IS, CG); empty = all")
	class := flag.String("class", "S", "problem class (S, W, A)")
	rate := flag.Bool("rate", true, "rate on the Table 3 processors")
	sweep := flag.Bool("sweep", false, "run the parallel EP/IS rank sweep instead of the serial kernel table")
	ranks := flag.Int("ranks", 24, "sweep rank counts 1..N")
	serial := flag.Bool("serial", false, "run the sweep's worlds one at a time instead of concurrently")
	native := flag.Bool("native", false, "sweep with native collectives (recursive doubling, pipelined ring)")
	contention := flag.Bool("contention", false, "sweep with the per-port fabric occupancy model")
	flag.Parse()
	d.Check(d.Setup())

	var spec core.ExperimentSpec
	if *sweep {
		s := &core.NASSweepSpec{
			Class:      *class,
			Concurrent: !*serial,
			Native:     *native,
			Contention: *contention,
		}
		if *ranks > 0 {
			for p := 1; p <= *ranks; p++ {
				s.Ranks = append(s.Ranks, p)
			}
		}
		spec = s
	} else {
		spec = &core.NASKernelsSpec{Class: *class, Kernel: *kernel, Rate: rate}
	}
	_, err := d.RunSpec(spec)
	d.Check(err)
	d.Check(d.Finish())
}
