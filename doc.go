// Package repro is a from-scratch Go reproduction of "Honey, I Shrunk
// the Beowulf!" (Feng, Warren, Weigle — ICPP 2002): the MetaBlade Bladed
// Beowulf, its Transmeta Crusoe processors (Code Morphing Software over a
// VLIW engine), the comparison processors, the cluster's physical and
// cost models, and the full evaluation — the gravitational microkernel,
// parallel treecode N-body simulation, NAS Parallel Benchmarks, and the
// TCO/ToPPeR/performance-per-space/performance-per-power analyses.
//
// The library lives under internal/; the executables under cmd/ and
// examples/ are the public surface. bench_test.go regenerates every
// table and figure of the paper — see DESIGN.md for the experiment index
// and EXPERIMENTS.md for paper-versus-measured results.
package repro
