// greendestiny is the scale-up study behind the paper's footnote 5 and
// conclusion: grow the 24-blade MetaBlade into the 240-blade Green
// Destiny ("a cluster in a rack") and compare space, power, reliability
// and cost against a traditional cluster of the same node count.
//
//	go run ./examples/greendestiny
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/tco"
)

func main() {
	rates := tco.PaperRates()
	rel := cluster.DefaultReliability()

	fmt.Println("Scaling the Bladed Beowulf: 24 → 240 nodes")
	fmt.Println()
	fmt.Printf("%-22s %8s %10s %10s %12s %14s\n",
		"Cluster", "Nodes", "Area ft²", "Power kW", "Failures/yr", "4-yr space $")
	show := func(name string, c *cluster.Cluster) {
		spaceCost := c.FootprintSqFt() * rates.SpacePerSqFtYear * rates.Years
		fmt.Printf("%-22s %8d %10.0f %10.2f %12.1f %14.0f\n",
			name, c.Nodes, c.FootprintSqFt(), c.TotalPowerKW(),
			c.ExpectedFailuresPerYear(rel), spaceCost)
	}

	mb, err := cluster.New("MetaBlade", cluster.NodeTM5600, cluster.BladePackaging(), 24, 27)
	check(err)
	gd, err := cluster.New("Green Destiny", cluster.NodeTM5800, cluster.BladePackaging(), 240, 27)
	check(err)
	trad24, err := cluster.New("traditional-24", cluster.NodeP4, cluster.TraditionalPackaging(), 24, 24)
	check(err)
	trad240, err := cluster.New("traditional-240", cluster.NodeP4, cluster.TraditionalPackaging(), 240, 24)
	check(err)
	show("MetaBlade (24)", mb)
	show("traditional (24)", trad24)
	show("Green Destiny (240)", gd)
	show("traditional (240)", trad240)

	gdSpace := gd.FootprintSqFt() * rates.SpacePerSqFtYear * rates.Years
	tradSpace := trad240.FootprintSqFt() * rates.SpacePerSqFtYear * rates.Years
	fmt.Printf("\nFootnote 5 check: at 240 nodes the blade space cost stays $%.0f while the\n"+
		"traditional cluster's grows to $%.0f — %.0fx more expensive.\n",
		gdSpace, tradSpace, tradSpace/gdSpace)

	// Reliability side: simulated failures over the four-year lifetime.
	studies, err := core.StudyAvailability(4, 2002)
	check(err)
	fmt.Println("\nReliability simulation over the 4-year lifetime (24 nodes):")
	for _, s := range studies {
		fmt.Printf("  %-18s %.1f failures/yr, %6.0f lost CPU-hours, availability %.5f, downtime cost $%.0f\n",
			s.Name, s.FailuresPerYear, s.LostCPUHours, s.Availability, s.DowntimeCostUSD)
	}

	// Performance side: Green Destiny's projected treecode rating.
	rate58, err := core.TreecodeRate(cpu.NewTM5800(), 20000)
	check(err)
	gdGflops := rate58 * 0.78 * 240 / 1000
	fmt.Printf("\nProjected Green Destiny treecode performance: %.1f Gflops in %0.f ft² and %.1f kW\n",
		gdGflops, gd.FootprintSqFt(), gd.TotalPowerKW())
	fmt.Printf("  → %.0f Mflops/ft², %.1f Gflops/kW\n",
		tco.PerfPerSpace(gdGflops, gd.FootprintSqFt()),
		tco.PerfPerPower(gdGflops, gd.TotalPowerKW()))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
