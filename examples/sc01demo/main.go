// sc01demo replays the paper's §3.3 SC'01 demonstration: a gravitational
// N-body simulation on the 24 simulated MetaBlade blades, reporting the
// sustained Gflop rating, the fraction of peak, and the Figure 3 density
// rendering. (The original ran 9,753,824 particles for ~1000 steps; the
// default here is scaled down so the demo finishes in seconds — raise
// -n and -steps to taste.)
//
//	go run ./examples/sc01demo
//	go run ./examples/sc01demo -n 200000 -steps 20
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cpu"
	"repro/internal/mpi"
	"repro/internal/nbody"
	"repro/internal/netsim"
	"repro/internal/treecode"
)

func main() {
	n := flag.Int("n", 60000, "particle count (the SC'01 run used 9,753,824)")
	steps := flag.Int("steps", 8, "leapfrog steps (the SC'01 run used ~1000)")
	blades := flag.Int("blades", 24, "ServerBlades in the chassis")
	render := flag.String("render", "", "write the Figure 3 PGM here")
	flag.Parse()

	fmt.Printf("SC'01 demo replay: %d particles on %d simulated TM5600 blades over 100 Mb/s Fast Ethernet\n",
		*n, *blades)

	costs, err := cpu.CalibrateFor(cpu.NewTM5600(), cpu.MissRateTree)
	if err != nil {
		log.Fatal(err)
	}
	cm := treecode.CostModel{
		SecondsPerInteraction: costs.Seconds(treecode.InteractionMix()),
		SecondsPerBuildSource: costs.Seconds(treecode.BuildMix()),
	}

	s := nbody.NewPlummer(*n, 1, 2001)
	for i := range s.VX {
		s.VX[i] *= 0.3
		s.VY[i] *= 0.3
		s.VZ[i] *= 0.3
	}

	var simTime float64
	var flops uint64
	forcer := forcerFunc(func(sys *nbody.System) error {
		w, err := mpi.NewWorld(*blades, netsim.FastEthernet())
		if err != nil {
			return err
		}
		res, err := treecode.ParallelForces(w, sys, treecode.ParallelConfig{
			Theta: 0.7, Eps: sys.Eps, Cost: cm,
		})
		if err != nil {
			return err
		}
		simTime += res.SimTime
		flops += res.Stats.Flops()
		return nil
	})
	if err := s.Leapfrog(forcer, 0.01, *steps); err != nil {
		log.Fatal(err)
	}

	sustained := float64(flops) / simTime / 1e9
	// Peak: the paper rates the 24-blade chassis at 15.2 Gflops
	// (633 MHz × 1 flop/cycle × 24 ≈ 15.2).
	peak := 633e6 * float64(*blades) / 1e9
	fmt.Printf("completed %.3g flops in %.2f simulated seconds\n", float64(flops), simTime)
	fmt.Printf("sustained %.2f Gflops = %.0f%% of the %.1f Gflops peak (paper: 2.1 Gflops, 14%%)\n",
		sustained, 100*sustained/peak, peak)

	img, err := nbody.RenderAuto(s, 72, 36)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFigure 3 — intermediate stage of the gravitational collapse:")
	fmt.Println(img.ASCII())
	if *render != "" {
		f, err := os.Create(*render)
		if err != nil {
			log.Fatal(err)
		}
		if err := img.WritePGM(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *render)
	}
}

type forcerFunc func(*nbody.System) error

func (f forcerFunc) Forces(s *nbody.System) error { return f(s) }
