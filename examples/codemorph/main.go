// codemorph watches the Code Morphing Software at work on a hot loop:
// interpretation of cold code, hotspot detection, translation into VLIW
// molecules, and amortization through the translation cache — the §2
// machinery of the paper, instrumented.
//
//	go run ./examples/codemorph
package main

import (
	"fmt"
	"log"

	"repro/internal/cms"
	"repro/internal/isa"
	"repro/internal/vliw"
)

const hotLoop = `
	; dot product of two 64-element vectors, repeated
	movi r10, 1000       ; repetitions
	movi r9, 0
outer:
	movi r1, 0           ; i
	movi r2, 64          ; base of y
	fmovi f1, 0.0        ; acc
inner:
	fld  f2, [r1]
	fld  f3, [r1+64]
	fmul f4, f2, f3
	fadd f1, f1, f4
	addi r1, r1, 1
	cmpi r1, 64
	jl   inner
	addi r9, r9, 1
	cmp  r9, r10
	jl   outer
	fst  [r0+128], f1
	hlt
`

func main() {
	prog := isa.MustAssemble(hotLoop)

	run := func(label string, params cms.Params) cms.Stats {
		st := isa.NewState(130)
		for i := int64(0); i < 64; i++ {
			st.StoreF(i, float64(i)*0.25)
			st.StoreF(64+i, 2.0-float64(i)*0.01)
		}
		m := cms.NewMachine(params, vliw.TM5600Timing())
		cycles, tr, err := m.Run(prog, st, 0)
		if err != nil {
			log.Fatal(err)
		}
		s := m.Stats()
		fmt.Printf("%s\n", label)
		fmt.Printf("  total cycles          %12d   (%.1f cycles per x86 instruction)\n",
			cycles, float64(cycles)/float64(tr.Instrs))
		fmt.Printf("  interpreting          %12d cycles over %d instructions\n", s.InterpCycles, s.InterpInstrs)
		fmt.Printf("  translating           %12d cycles over %d regions (%d x86 instrs)\n",
			s.TranslateCycles, s.Translations, s.TranslatedInstrs)
		fmt.Printf("  native execution      %12d cycles, %d molecules, %.2f atoms/molecule packed\n",
			s.NativeCycles, s.NativeMolecules, s.PackingDensity())
		fmt.Printf("  dispatch              %12d cycles (%d chained, %d cold)\n\n",
			s.DispatchCycles, s.ChainedDispatches, s.ColdDispatches)
		return s
	}

	fmt.Println("=== The same x86 program under three CMS configurations ===")
	fmt.Println()

	interpOnly := cms.DefaultParams()
	interpOnly.HotThreshold = 1 << 30
	run("1) Interpreter only (translation disabled)", interpOnly)

	run("2) CMS defaults: interpret cold code, translate hot regions", cms.DefaultParams())

	eager := cms.DefaultParams()
	eager.HotThreshold = 1
	run("3) Eager translation (translate on first touch)", eager)

	// Show the translated loop body itself.
	tr := cms.NewTranslator()
	head := findLabel(prog)
	tl, err := tr.Translate(prog, head)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== Translation of the inner loop (x86 PC %d, %d instructions → %d molecules) ===\n",
		head, tl.SrcInstrs, len(tl.Molecules))
	for i, mol := range tl.Molecules {
		fmt.Printf("  molecule %d:", i)
		for _, a := range mol.Atoms {
			fmt.Printf("  [%s %s]", vliw.UnitOf(a.Op), a.Op)
		}
		fmt.Println()
	}
}

// findLabel locates the inner loop head (the target of the first
// backward conditional branch).
func findLabel(p isa.Program) int {
	for pc, in := range p {
		if isa.IsCondBranch(in.Op) && int(in.Imm) < pc {
			return int(in.Imm)
		}
	}
	return 0
}
