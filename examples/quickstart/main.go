// Quickstart: the library in one tour — simulate a Transmeta blade
// running x86 code through Code Morphing Software, benchmark it against
// a Pentium III, assemble the 24-blade MetaBlade cluster, and compute
// the paper's headline metric, ToPPeR.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/cpu"
	"repro/internal/kernels"
	"repro/internal/tco"
)

func main() {
	// 1. Run the paper's gravitational microkernel (Karp reciprocal-sqrt
	//    variant) on a simulated TM5600: CMS interprets the x86 stream,
	//    translates the hot loop into VLIW molecules, and executes it
	//    natively.
	tm := cpu.NewTM5600()
	g := kernels.DefaultGravMicro(kernels.GravKarp)
	prog, st, err := g.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := tm.RunKernel(prog, st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TM5600 (CMS+VLIW simulation): %.1f Mflops on the Karp-sqrt microkernel\n", res.Mflops())

	// 2. The same binary on a Pentium III model for comparison.
	piii := cpu.PentiumIII500().AsProcessor()
	prog, st, err = g.Build()
	if err != nil {
		log.Fatal(err)
	}
	res2, err := piii.RunKernel(prog, st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pentium III 500 (trace-driven model): %.1f Mflops on the same kernel\n\n", res2.Mflops())

	// 3. Assemble MetaBlade: 24 TM5600 ServerBlades in a 3U RLX chassis.
	mb, err := cluster.New("MetaBlade", cluster.NodeTM5600, cluster.BladePackaging(), 24, 27)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MetaBlade: %d blades in %d chassis, %.0f ft², %.2f kW (no active cooling)\n",
		mb.Nodes, mb.Chassis(), mb.FootprintSqFt(), mb.TotalPowerKW())

	// 4. Total cost of ownership and ToPPeR versus a traditional cluster.
	cfgs, err := tco.PaperTable5Configs()
	if err != nil {
		log.Fatal(err)
	}
	rates := tco.PaperRates()
	for _, cfg := range cfgs {
		if cfg.Name != "PIII" && cfg.Name != "TM5600" {
			continue
		}
		b, err := tco.Compute(cfg, rates)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s acquisition $%6.0fK, 4-year TCO $%6.0fK\n",
			cfg.Name, b.Acquisition/1000, b.TCO()/1000)
	}
	fmt.Println("\nThe blade costs more to buy and three times less to own —")
	fmt.Println("run `go run ./cmd/metablade -all` for the full evaluation.")
}
