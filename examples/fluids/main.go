// fluids demonstrates the paper's §3.5.1 point about the treecode as a
// library: "only 2000 lines of code external to the library are required
// to implement a gravitational N-body simulation. The vortex particle
// method requires only 2500 lines interfaced to the same treecode
// library. Smoothed particle hydrodynamics takes 3000 lines." Here the
// same octree drives a self-advecting vortex ring (Biot–Savart through
// component trees) and an adiabatically expanding SPH gas ball
// (tree-range-query neighbour finding).
//
//	go run ./examples/fluids
package main

import (
	"fmt"
	"log"

	"repro/internal/nbody"
	"repro/internal/sph"
	"repro/internal/vortex"
)

func main() {
	fmt.Println("=== Vortex particle method on the treecode (Biot–Savart) ===")
	ring := vortex.Ring(96, 1.0, 1.0)
	z0 := 0.0
	for step := 0; step <= 30; step++ {
		if step%10 == 0 {
			z := 0.0
			for i := 0; i < ring.N(); i++ {
				z += ring.Z[i]
			}
			z /= float64(ring.N())
			if step == 0 {
				z0 = z
			}
			fmt.Printf("  step %2d: ring at z = %+.4f (moved %+.4f)\n", step, z, z-z0)
		}
		if step < 30 {
			if err := ring.Step(0.02, 0.5); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("  → the ring self-advects along its axis, radius preserved (the classic smoke ring)")

	fmt.Println()
	fmt.Println("=== Smoothed particle hydrodynamics on the treecode (range queries) ===")
	s := nbody.NewPlummer(800, 0.3, 7)
	for i := range s.VX {
		s.VX[i], s.VY[i], s.VZ[i] = 0, 0, 0
	}
	gas, err := sph.NewGas(s, 0.1, 2.0)
	if err != nil {
		log.Fatal(err)
	}
	e0 := gas.ThermalEnergy() + gas.KineticEnergy()
	for step := 0; step <= 30; step++ {
		if step%10 == 0 {
			eth, ek := gas.ThermalEnergy(), gas.KineticEnergy()
			fmt.Printf("  step %2d: thermal %.4f  kinetic %.4f  total %.4f  (⟨neighbours⟩ %.0f)\n",
				step, eth, ek, eth+ek, gas.NeighborCount)
		}
		if step < 30 {
			if err := gas.Step(0.002); err != nil {
				log.Fatal(err)
			}
		}
	}
	e1 := gas.ThermalEnergy() + gas.KineticEnergy()
	fmt.Printf("  → hot ball expands: thermal → kinetic, total drift %.2f%% (adiabatic)\n",
		100*(e1-e0)/e0)
}
