// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices DESIGN.md calls out.
// Reported custom metrics carry the paper's units (Mflops, Mops, speedup,
// $K, Gflops/kW, ...), so `go test -bench=. -benchmem` reproduces the
// evaluation's numbers alongside the harness's own cost.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/cms"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/longrun"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/nbody"
	"repro/internal/netsim"
	"repro/internal/par"
	"repro/internal/rsqrt"
	"repro/internal/sph"
	"repro/internal/treecode"
	"repro/internal/vliw"
	"repro/internal/vortex"
)

// --- Table 1: gravitational microkernel across five processors ---

func BenchmarkTable1(b *testing.B) {
	for _, p := range cpu.EvaluationCPUs() {
		for _, variant := range []kernels.GravVariant{kernels.GravMath, kernels.GravKarp} {
			b.Run(fmt.Sprintf("%s/%s", p.Name(), variant), func(b *testing.B) {
				g := kernels.DefaultGravMicro(variant)
				var mflops float64
				for i := 0; i < b.N; i++ {
					prog, st, err := g.Build()
					if err != nil {
						b.Fatal(err)
					}
					res, err := p.RunKernel(prog, st)
					if err != nil {
						b.Fatal(err)
					}
					mflops = res.Mflops()
				}
				b.ReportMetric(mflops, "Mflops")
			})
		}
	}
}

// --- Table 2: N-body scalability on the 24-blade MetaBlade ---

func BenchmarkTable2(b *testing.B) {
	costs, err := cpu.CalibrateFor(cpu.NewTM5600(), cpu.MissRateTree)
	if err != nil {
		b.Fatal(err)
	}
	cm := treecode.CostModel{
		SecondsPerInteraction: costs.Seconds(treecode.InteractionMix()),
		SecondsPerBuildSource: costs.Seconds(treecode.BuildMix()),
	}
	const particles = 30000
	var t1 float64
	for _, p := range []int{1, 2, 4, 8, 16, 24} {
		b.Run(fmt.Sprintf("cpus=%d", p), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				s := nbody.NewPlummer(particles, 1, 2001)
				w, err := mpi.NewWorld(p, netsim.FastEthernet())
				if err != nil {
					b.Fatal(err)
				}
				res, err := treecode.ParallelForces(w, s, treecode.ParallelConfig{
					Theta: 0.7, Eps: s.Eps, Cost: cm,
				})
				if err != nil {
					b.Fatal(err)
				}
				sim = res.SimTime
			}
			if p == 1 {
				t1 = sim
			}
			b.ReportMetric(sim, "sim-seconds")
			if t1 > 0 {
				b.ReportMetric(t1/sim, "speedup")
			}
		})
	}
}

// --- Table 3: NPB 2.3 per-processor Mops ---

func BenchmarkTable3(b *testing.B) {
	class := nas.ClassW
	if testing.Short() {
		class = nas.ClassS
	}
	procs := cpu.NASCPUs()
	costs := make([]cpu.EffCosts, len(procs))
	for i, p := range procs {
		var err error
		costs[i], err = cpu.CalibrateFor(p, cpu.MissRateClassW)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, k := range nas.Table3Kernels() {
		k := k
		b.Run(fmt.Sprintf("%s/class%s", k.Name(), class), func(b *testing.B) {
			var r *nas.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = k.Run(class)
				if err != nil {
					b.Fatal(err)
				}
			}
			if !r.Verified {
				b.Fatalf("%s failed verification", k.Name())
			}
			for i, p := range procs {
				b.ReportMetric(costs[i].Mops(r.Ops, &r.Mix), "Mops-"+shortCPU(p.Name()))
			}
		})
	}
}

func shortCPU(name string) string {
	switch name {
	case "1200-MHz AMD Athlon MP":
		return "Athlon"
	case "500-MHz Intel Pentium III":
		return "PIII"
	case "633-MHz Transmeta TM5600":
		return "TM5600"
	case "375-MHz IBM Power3":
		return "Power3"
	}
	return name
}

// --- Table 4: historical treecode ratings ---

func BenchmarkTable4(b *testing.B) {
	var rows []core.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = core.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MflopPerProc, "Mflops/proc-"+sanitize(r.Machine))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '(', ')', '\'':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// --- Table 5: TCO, plus the ToPPeR conclusion ---

func BenchmarkTable5(b *testing.B) {
	var rows []core.Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = core.Table5()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.B.TCO()/1000, "TCO-$K-"+r.Name)
	}
	s, err := core.ToPPeR()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(s.ToPPeRAdvantage, "ToPPeR-advantage")
}

// --- Tables 6 and 7: performance/space and performance/power ---

func BenchmarkTable6And7(b *testing.B) {
	var rows []core.SpacePowerRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, _, err = core.SpacePower()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.PerfSpace, "Mflops/ft2-"+sanitize(r.Machine))
		b.ReportMetric(r.PerfPower, "Gflops/kW-"+sanitize(r.Machine))
	}
}

// --- Figure 3: the N-body rendering ---

func BenchmarkFigure3(b *testing.B) {
	cfg := core.Figure3Config{Particles: 10000, Steps: 5, Width: 72, Height: 36}
	var interactions uint64
	for i := 0; i < b.N; i++ {
		_, sys, err := core.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		interactions = sys.Interactions
	}
	b.ReportMetric(float64(interactions), "interactions")
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkCMSHotThreshold sweeps the interpret→translate crossover.
func BenchmarkCMSHotThreshold(b *testing.B) {
	g := kernels.GravMicro{Variant: kernels.GravKarp, NBodies: 8, Iters: 200,
		TableBits: 7, ChebDeg: 2, NRIters: 2, Seed: 3}
	for _, hot := range []int{1, 8, 24, 100, 1000, 1 << 30} {
		b.Run(fmt.Sprintf("hot=%d", hot), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				prog, st, err := g.Build()
				if err != nil {
					b.Fatal(err)
				}
				params := cms.DefaultParams()
				params.HotThreshold = hot
				m := cms.NewMachine(params, vliw.TM5600Timing())
				cycles, _, err = m.Run(prog, st, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkMoleculeWidth compares the 128-bit (4-atom) and 64-bit
// (2-atom) molecule formats.
func BenchmarkMoleculeWidth(b *testing.B) {
	g := kernels.GravMicro{Variant: kernels.GravKarp, NBodies: 8, Iters: 200,
		TableBits: 7, ChebDeg: 2, NRIters: 2, Seed: 3}
	for _, wide := range []bool{true, false} {
		name := "wide-128bit"
		if !wide {
			name = "narrow-64bit"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			var density float64
			for i := 0; i < b.N; i++ {
				prog, st, err := g.Build()
				if err != nil {
					b.Fatal(err)
				}
				m := cms.NewMachine(cms.DefaultParams(), vliw.TM5600Timing())
				m.Trans.Wide = wide
				cycles, _, err = m.Run(prog, st, 0)
				if err != nil {
					b.Fatal(err)
				}
				density = m.Stats().PackingDensity()
			}
			b.ReportMetric(float64(cycles), "cycles")
			b.ReportMetric(density, "atoms/molecule")
		})
	}
}

// BenchmarkTreecodeTheta sweeps the multipole acceptance parameter:
// accuracy versus work.
func BenchmarkTreecodeTheta(b *testing.B) {
	const n = 4000
	ref := nbody.NewPlummer(n, 1, 5)
	ref.DirectForces()
	for _, theta := range []float64{0.3, 0.5, 0.7, 0.9, 1.2} {
		b.Run(fmt.Sprintf("theta=%.1f", theta), func(b *testing.B) {
			var inter uint64
			var rms float64
			for i := 0; i < b.N; i++ {
				s := nbody.NewPlummer(n, 1, 5)
				f := &treecode.Forcer{Theta: theta}
				if err := f.Forces(s); err != nil {
					b.Fatal(err)
				}
				inter = f.LastStats.Interactions()
				var sum, norm float64
				for j := 0; j < n; j++ {
					dx := s.AX[j] - ref.AX[j]
					dy := s.AY[j] - ref.AY[j]
					dz := s.AZ[j] - ref.AZ[j]
					sum += dx*dx + dy*dy + dz*dz
					norm += ref.AX[j]*ref.AX[j] + ref.AY[j]*ref.AY[j] + ref.AZ[j]*ref.AZ[j]
				}
				rms = sum / norm
			}
			b.ReportMetric(float64(inter), "interactions")
			b.ReportMetric(rms, "rms-err-sq")
		})
	}
}

// BenchmarkForceEngines races the three force-evaluation engines —
// the recursive walk, the bit-identical interaction-list engine, and
// the amortized group walk — single-threaded over a prebuilt tree, at
// the two sizes EXPERIMENTS.md records (one op = a full force sweep).
func BenchmarkForceEngines(b *testing.B) {
	for _, n := range []int{4096, 65536} {
		sys := nbody.NewPlummer(n, 1, 2001)
		tr, err := treecode.Build(treecode.SourcesFromSystem(sys), treecode.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		var st treecode.Stats
		b.Run(fmt.Sprintf("recursive/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := 0; j < n; j++ {
					sys.AX[j], sys.AY[j], sys.AZ[j] = tr.ForceAtRecursive(sys.X[j], sys.Y[j], sys.Z[j], j, 0.7, sys.Eps, &st)
				}
			}
		})
		ar := treecode.NewWalkArena()
		b.Run(fmt.Sprintf("list/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := 0; j < n; j++ {
					sys.AX[j], sys.AY[j], sys.AZ[j] = tr.ForceAtList(sys.X[j], sys.Y[j], sys.Z[j], j, 0.7, sys.Eps, &st, ar)
				}
			}
		})
		groups := tr.AppendGroups(nil, treecode.DefaultGroupSize)
		b.Run(fmt.Sprintf("groupwalk/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, li := range groups {
					tr.GroupForceLeaf(li, 0.7, sys.Eps, ar, &st)
					for k := 0; k < ar.NumTargets(); k++ {
						j, ax, ay, az := ar.Target(k)
						sys.AX[j], sys.AY[j], sys.AZ[j] = ax, ay, az
					}
				}
			}
		})
		tasks := tr.AppendGroups(nil, treecode.DualTaskSize)
		b.Run(fmt.Sprintf("dual/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, ti := range tasks {
					tr.DualForceWalk(ti, 0.7, sys.Eps, 0, nil, ar, &st)
					for k := 0; k < ar.NumTargets(); k++ {
						j, ax, ay, az := ar.Target(k)
						sys.AX[j], sys.AY[j], sys.AZ[j] = ax, ay, az
					}
				}
			}
		})
	}
}

// BenchmarkDirectVsTree locates the O(N²)/O(N log N) crossover.
func BenchmarkDirectVsTree(b *testing.B) {
	for _, n := range []int{100, 300, 1000, 3000} {
		b.Run(fmt.Sprintf("direct/n=%d", n), func(b *testing.B) {
			s := nbody.NewPlummer(n, 1, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.DirectForces()
			}
		})
		b.Run(fmt.Sprintf("tree/n=%d", n), func(b *testing.B) {
			s := nbody.NewPlummer(n, 1, 7)
			f := &treecode.Forcer{Theta: 0.7}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.Forces(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKarpConfig sweeps the Karp reciprocal-square-root
// configuration: table size, polynomial degree, Newton iterations.
func BenchmarkKarpConfig(b *testing.B) {
	cases := []struct{ bits, deg, nr int }{
		{4, 1, 2}, {7, 2, 2}, {10, 2, 1}, {7, 2, 1}, {7, 0, 3},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("bits=%d/deg=%d/nr=%d", c.bits, c.deg, c.nr), func(b *testing.B) {
			k := rsqrt.MustKarp(c.bits, c.deg, c.nr)
			x := 1.0
			var y float64
			for i := 0; i < b.N; i++ {
				y = k.Rsqrt(x)
				x += 0.001
				if x > 1e6 {
					x = 1
				}
			}
			_ = y
			b.ReportMetric(k.MaxRelError(0.5, 8, 2000), "max-rel-err")
			b.ReportMetric(float64(k.FlopsPerCall()), "flops/call")
		})
	}
}

// BenchmarkNetworkSweep moves Table 2's efficiency knee across
// 10/100/1000 Mb/s fabrics.
func BenchmarkNetworkSweep(b *testing.B) {
	costs, err := cpu.CalibrateFor(cpu.NewTM5600(), cpu.MissRateTree)
	if err != nil {
		b.Fatal(err)
	}
	cm := treecode.CostModel{
		SecondsPerInteraction: costs.Seconds(treecode.InteractionMix()),
		SecondsPerBuildSource: costs.Seconds(treecode.BuildMix()),
	}
	fabrics := []*netsim.Fabric{netsim.Ethernet10(), netsim.FastEthernet(), netsim.GigabitEthernet()}
	const particles = 20000
	for _, fab := range fabrics {
		b.Run(sanitize(fab.Name), func(b *testing.B) {
			var eff float64
			for i := 0; i < b.N; i++ {
				times := map[int]float64{}
				for _, p := range []int{1, 24} {
					s := nbody.NewPlummer(particles, 1, 2001)
					w, err := mpi.NewWorld(p, fab)
					if err != nil {
						b.Fatal(err)
					}
					res, err := treecode.ParallelForces(w, s, treecode.ParallelConfig{
						Theta: 0.7, Eps: s.Eps, Cost: cm,
					})
					if err != nil {
						b.Fatal(err)
					}
					times[p] = res.SimTime
				}
				eff = times[1] / times[24] / 24
			}
			b.ReportMetric(eff, "efficiency@24")
		})
	}
}

// BenchmarkAmbientTemperature applies the paper's failure-rate doubling
// rule across machine-room temperatures.
func BenchmarkAmbientTemperature(b *testing.B) {
	rel := cluster.DefaultReliability()
	for _, ambient := range []float64{18, 24, 30, 36} {
		b.Run(fmt.Sprintf("ambient=%.0fC", ambient), func(b *testing.B) {
			var fails float64
			for i := 0; i < b.N; i++ {
				c, err := cluster.New("sweep", cluster.NodeP4, cluster.TraditionalPackaging(), 24, ambient)
				if err != nil {
					b.Fatal(err)
				}
				fails = c.ExpectedFailuresPerYear(rel)
			}
			b.ReportMetric(fails, "failures/yr")
		})
	}
}

// BenchmarkHostParallel measures the internal/par execution layer on the
// real host: tree build and O(N²) direct forces at N=30000, serial
// (workers=1) versus the full worker pool (workers=GOMAXPROCS). Force
// output is bit-identical across widths (asserted by the determinism
// tests); only wall-clock changes, so the speedup is read directly off
// ns/op. Note Table 2's "cpus" are simulated blades; these workers are
// real host cores — the two axes are independent (DESIGN.md §8).
func BenchmarkHostParallel(b *testing.B) {
	const n = 30000
	s := nbody.NewPlummer(n, 1, 2001)
	srcs := treecode.SourcesFromSystem(s)
	widths := []int{1}
	if g := runtime.GOMAXPROCS(0); g > 1 {
		widths = append(widths, g)
	}
	for _, w := range widths {
		b.Run(fmt.Sprintf("treebuild/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := treecode.Build(srcs, treecode.BuildOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("treeforces/workers=%d", w), func(b *testing.B) {
			sys := nbody.NewPlummer(n, 1, 2001)
			f := &treecode.Forcer{Theta: 0.7, Workers: w}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.Forces(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("directforces/workers=%d", w), func(b *testing.B) {
			sys := nbody.NewPlummer(n, 1, 2001)
			pool := par.New(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.DirectForcesWith(pool)
			}
		})
	}
}

// BenchmarkGears compares the single-gear CMS pipeline with the tiered
// one (interpret → quick translate → superblock reoptimize, chained) on
// the Table 1 microkernel. sim-cycles is deterministic and drops with
// gears on; ns/op is the host-side cost of simulating each configuration.
func BenchmarkGears(b *testing.B) {
	for _, variant := range []kernels.GravVariant{kernels.GravMath, kernels.GravKarp} {
		for _, gears := range []bool{false, true} {
			b.Run(fmt.Sprintf("gravmicro/%s/gears=%t", variant, gears), func(b *testing.B) {
				c := cpu.NewTM5600()
				c.Gears = gears
				g := kernels.DefaultGravMicro(variant)
				var cycles, mflops float64
				for i := 0; i < b.N; i++ {
					prog, st, err := g.Build()
					if err != nil {
						b.Fatal(err)
					}
					res, err := c.RunKernel(prog, st)
					if err != nil {
						b.Fatal(err)
					}
					cycles = res.Cycles
					mflops = res.Mflops()
				}
				b.ReportMetric(cycles, "sim-cycles")
				b.ReportMetric(mflops, "Mflops")
			})
		}
	}
}

// BenchmarkCalibrationMemo shows what the process-wide calibration memo
// saves: a cold CalibrateFor runs eight kernel simulations; a warm one
// is a map lookup.
func BenchmarkCalibrationMemo(b *testing.B) {
	tm := cpu.NewTM5600()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cpu.ResetCalibCache()
			if _, err := cpu.CalibrateFor(tm, cpu.MissRateTree); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		if _, err := cpu.CalibrateFor(tm, cpu.MissRateTree); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cpu.CalibrateFor(tm, cpu.MissRateTree); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCrusoeEngine measures the raw simulator throughput (host
// side): simulated x86 instructions per host-second under full CMS+VLIW
// simulation.
func BenchmarkCrusoeEngine(b *testing.B) {
	g := kernels.GravMicro{Variant: kernels.GravMath, NBodies: 16, Iters: 100, Seed: 1}
	prog, _, err := g.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		_, st, err := g.Build()
		if err != nil {
			b.Fatal(err)
		}
		m := cms.NewMachine(cms.DefaultParams(), vliw.TM5600Timing())
		_, tr, err := m.Run(prog, st, 0)
		if err != nil {
			b.Fatal(err)
		}
		instrs = tr.Instrs
	}
	b.ReportMetric(float64(instrs), "sim-instrs/op")
}

// BenchmarkMortonKeys measures key-generation throughput (host side).
func BenchmarkMortonKeys(b *testing.B) {
	s := nbody.NewPlummer(10000, 1, 3)
	root, err := treecode.BoundingBox(s.X, s.Y, s.Z)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc treecode.Key
		for j := 0; j < s.N(); j++ {
			acc ^= treecode.MortonKey(s.X[j], s.Y[j], s.Z[j], root)
		}
		if acc == 0xdead {
			b.Fatal("unlikely")
		}
	}
}

// BenchmarkIsaInterp measures the reference interpreter (host side).
func BenchmarkIsaInterp(b *testing.B) {
	g := kernels.GravMicro{Variant: kernels.GravKarp, NBodies: 16, Iters: 50,
		TableBits: 7, ChebDeg: 2, NRIters: 2, Seed: 1}
	prog, _, err := g.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := g.Build()
		if err != nil {
			b.Fatal(err)
		}
		if err := isa.Run(prog, st, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extensions beyond the paper's tables ---

// BenchmarkLongRun sweeps the TM5600's LongRun ladder: the f·V² trade
// between Mflops and Mflops/W (the trajectory the paper's conclusion
// sketches toward Green Destiny).
func BenchmarkLongRun(b *testing.B) {
	build := func() (isa.Program, *isa.State, error) {
		g := kernels.GravMicro{Variant: kernels.GravKarp, NBodies: 8, Iters: 60,
			TableBits: 7, ChebDeg: 2, NRIters: 2, Seed: 3}
		return g.Build()
	}
	for _, ladder := range []struct {
		name   string
		crusoe *cpu.Crusoe
		states []longrun.State
	}{
		{"TM5600", cpu.NewTM5600(), longrun.TM5600States()},
		{"TM5800", cpu.NewTM5800(), longrun.TM5800States()},
	} {
		b.Run(ladder.name, func(b *testing.B) {
			var ms []longrun.Measurement
			for i := 0; i < b.N; i++ {
				var err error
				ms, err = longrun.Sweep(ladder.crusoe, ladder.states, build)
				if err != nil {
					b.Fatal(err)
				}
			}
			lo, hi := ms[0], ms[len(ms)-1]
			b.ReportMetric(hi.Mflops, "Mflops@max")
			b.ReportMetric(hi.MflopsPerWatt, "Mflops/W@max")
			b.ReportMetric(lo.MflopsPerWatt, "Mflops/W@min")
		})
	}
}

// BenchmarkMPIAllreduce measures the substrate's allreduce hot path —
// one op is a full 8-rank in-place allreduce of 512 float64s — with the
// per-rank buffer pools on (the shipping path, allocation-free at
// steady state) and off (the baseline -benchmem exposes the gap
// against). Allocations in the rank goroutines count: the testing
// package reads process-wide allocator statistics.
func BenchmarkMPIAllreduce(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"pooled", false}, {"unpooled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			w, err := mpi.NewWorldWithConfig(8, mpi.Config{
				Fabric:       netsim.FastEthernet(),
				DisablePool:  mode.disable,
				ChannelDepth: 256,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			err = w.Run(func(c *mpi.Comm) error {
				buf := make([]float64, 512)
				for i := 0; i < b.N; i++ {
					buf[0] = float64(c.Rank() + i)
					c.AllreduceInto(mpi.Sum, buf)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(w.MaxTime()/float64(b.N), "sim-seconds/op")
		})
	}
}

// BenchmarkMPICollectives compares the classic collective algorithms
// against the native ones (recursive-doubling allreduce, pipelined ring
// broadcast) on host time and simulated time.
func BenchmarkMPICollectives(b *testing.B) {
	for _, mode := range []struct {
		name   string
		native bool
	}{{"classic", false}, {"native", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			w, err := mpi.NewWorldWithConfig(16, mpi.Config{
				Fabric:       netsim.FastEthernet(),
				Native:       mode.native,
				ChannelDepth: 256,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			err = w.Run(func(c *mpi.Comm) error {
				buf := make([]float64, 4096)
				for i := 0; i < b.N; i++ {
					buf[0] = float64(c.Rank() + i)
					c.AllreduceInto(mpi.Sum, buf)
					c.BcastInto(0, buf)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(w.MaxTime()/float64(b.N), "sim-seconds/op")
		})
	}
}

// BenchmarkNASSweep runs the p=1..8 parallel NAS rank sweep serially
// and concurrently on the host pool; the simulated makespans are
// identical by construction, so the delta is pure host wall time.
func BenchmarkNASSweep(b *testing.B) {
	for _, mode := range []struct {
		name       string
		concurrent bool
	}{{"serial", false}, {"concurrent", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := core.DefaultNASSweepConfig()
			cfg.Ranks = cfg.Ranks[:8]
			cfg.Concurrent = mode.concurrent
			var sim float64
			for i := 0; i < b.N; i++ {
				rows, _, err := core.NewRun().NASSweep(cfg)
				if err != nil {
					b.Fatal(err)
				}
				sim = 0
				for _, row := range rows {
					sim += row.EPTime + row.ISTime
				}
			}
			b.ReportMetric(sim, "sim-makespan-sum")
		})
	}
}

// BenchmarkParallelEP scales the NPB EP kernel across simulated blades
// (embarrassingly parallel: near-ideal speedup even on Fast Ethernet).
func BenchmarkParallelEP(b *testing.B) {
	costs, err := cpu.CalibrateFor(cpu.NewTM5600(), cpu.MissRateSmall)
	if err != nil {
		b.Fatal(err)
	}
	var t1 float64
	for _, p := range []int{1, 4, 24} {
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				w, err := mpi.NewWorld(p, netsim.FastEthernet())
				if err != nil {
					b.Fatal(err)
				}
				res, err := nas.ParallelEP(w, nas.ClassS, costs)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Verified {
					b.Fatal("parallel EP failed verification")
				}
				sim = res.SimTime
			}
			if p == 1 {
				t1 = sim
			}
			b.ReportMetric(sim, "sim-seconds")
			if t1 > 0 {
				b.ReportMetric(t1/sim, "speedup")
			}
		})
	}
}

// BenchmarkSPH measures the hydrodynamics client of the treecode
// library (density + forces per step).
func BenchmarkSPH(b *testing.B) {
	s := nbody.NewPlummer(2000, 0.4, 11)
	g, err := sph.NewGas(s, 0.1, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Step(0.0005); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(g.NeighborCount, "neighbours/particle")
}

// BenchmarkVortex measures the Biot–Savart client (six component trees
// per evaluation).
func BenchmarkVortex(b *testing.B) {
	ring := vortex.Ring(512, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ring.Step(0.001, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}
